use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use mood_obs::StageAgg;
use rand::rngs::StdRng;
use rand::SeedableRng;

use mood_attacks::{
    ApAttack, Attack, AttackScratch, AttackSuite, PitAttack, PoiAttack, ProfileStore, StoreCounters,
};
use mood_lppm::{enumerate_compositions, Composition, GeoI, Hmc, Lppm, Trl};
use mood_metrics::spatio_temporal_distortion;
use mood_trace::{Dataset, Record, Trace};

use crate::exec::{self, CandidateJob, Executor, SequentialExecutor};
use crate::{
    FineGrainedStats, MoodConfig, ProtectedTrace, ProtectionOutcome, UserClass, UserProtection,
};

/// Reusable per-worker state for one candidate evaluation: the derived
/// RNG (stack-only, reassigned per candidate), the protected-records
/// buffer the LPPM writes into, and the attack scratch the suite scores
/// on — per-trace features (heatmap, POI clusters, Markov chain) plus
/// the shared rasterization cache both the LPPM fast paths and the
/// attacks use.
struct CandidateScratch {
    rng: StdRng,
    records: Vec<Record>,
    attack: AttackScratch,
}

impl CandidateScratch {
    fn new() -> Self {
        Self {
            rng: StdRng::seed_from_u64(0),
            records: Vec::new(),
            attack: AttackScratch::new(),
        }
    }
}

/// A recycling pool of [`CandidateScratch`] values, shared by every
/// candidate batch the engine runs.
///
/// Worker-slot scratch from [`exec::map_indexed_with`] lives only for
/// one batch; this pool is what carries the warmed-up buffers *across*
/// batches (and across users, when many pipeline workers drive the same
/// engine). Peak pool size is bounded by the peak number of concurrent
/// workers touching the engine. The reuse counters are the observable
/// half of the zero-allocation claim: they count candidate evaluations
/// that started from an already-warm protection buffer
/// (`reuses`) / attack scratch (`attack_reuses`) instead of fresh
/// allocations; the raster counters aggregate the rasterization-cache
/// hits and misses drained from returning leases.
struct ScratchPool {
    free: Mutex<Vec<CandidateScratch>>,
    reuses: AtomicU64,
    attack_reuses: AtomicU64,
    raster_hits: AtomicU64,
    raster_misses: AtomicU64,
}

impl ScratchPool {
    fn new() -> Self {
        Self {
            free: Mutex::new(Vec::new()),
            reuses: AtomicU64::new(0),
            attack_reuses: AtomicU64::new(0),
            raster_hits: AtomicU64::new(0),
            raster_misses: AtomicU64::new(0),
        }
    }

    /// Takes a scratch (recycled if available) wrapped in a lease that
    /// returns it to the pool on drop.
    fn take(&self) -> ScratchLease<'_> {
        let scratch = self.free.lock().expect("scratch pool lock").pop();
        ScratchLease {
            pool: self,
            scratch: Some(scratch.unwrap_or_else(CandidateScratch::new)),
        }
    }
}

/// RAII handle recycling a [`CandidateScratch`] back into its pool.
/// The scratch is `Some` until drop (the `Option` only exists so drop
/// can move it out without constructing a replacement).
struct ScratchLease<'p> {
    pool: &'p ScratchPool,
    scratch: Option<CandidateScratch>,
}

impl ScratchLease<'_> {
    fn scratch_mut(&mut self) -> &mut CandidateScratch {
        self.scratch.as_mut().expect("scratch present until drop")
    }
}

impl Drop for ScratchLease<'_> {
    fn drop(&mut self) {
        if let Some(mut scratch) = self.scratch.take() {
            // Surface the worker-local raster-cache counters before the
            // scratch goes back to sleep in the pool.
            let (hits, misses) = scratch.attack.take_raster_counters();
            self.pool.raster_hits.fetch_add(hits, Ordering::Relaxed);
            self.pool.raster_misses.fetch_add(misses, Ordering::Relaxed);
            self.pool
                .free
                .lock()
                .expect("scratch pool lock")
                .push(scratch);
        }
    }
}

/// Why an [`EngineBuilder`] could not produce an engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The base LPPM set was empty — MooD needs at least one mechanism
    /// to search over.
    EmptyLppmSet,
    /// The configuration failed validation; the message names the bad
    /// parameter.
    InvalidConfig(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::EmptyLppmSet => f.write_str("MooD needs at least one LPPM"),
            EngineError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Fallible, fluent construction of a [`MoodEngine`]: custom LPPM sets,
/// attack suites, composition depth and execution backend — the
/// `Result`-based replacement for the panicking [`MoodEngine::new`].
///
/// # Examples
///
/// ```
/// use mood_core::{EngineBuilder, ExecutorKind};
/// use mood_synth::presets;
/// use mood_trace::TimeDelta;
///
/// let ds = presets::privamov_like().scaled(0.15).generate();
/// let (background, test) = ds.split_chronological(TimeDelta::from_days(15));
/// let engine = EngineBuilder::paper_default(&background)
///     .executor(ExecutorKind::WorkStealing.build(4))
///     .seed(7)
///     .build()
///     .expect("paper defaults are valid");
/// let victim = test.iter().next().unwrap();
/// assert_eq!(engine.protect_user(victim).user, victim.user());
/// ```
pub struct EngineBuilder {
    suite: Arc<AttackSuite>,
    lppms: LppmSet,
    config: MoodConfig,
    executor: Arc<dyn Executor>,
    store: Option<Arc<ProfileStore>>,
    candidate_budget: usize,
    obs: Option<Arc<StageAgg>>,
}

/// Stage-name table for the engine's optional per-stage observer
/// ([`EngineBuilder::stage_observer`]), in pipeline order. Indices into
/// this table are what the engine records under; note that
/// `candidate_eval` runs *inside* the search stages (and `fine_grained`
/// re-enters them per sub-trace), so the totals overlap hierarchically
/// rather than summing to wall time.
pub const ENGINE_STAGES: [&str; 5] = [
    "raw_check",
    "search_single",
    "search_composition",
    "fine_grained",
    "candidate_eval",
];
const STAGE_RAW_CHECK: usize = 0;
const STAGE_SEARCH_SINGLE: usize = 1;
const STAGE_SEARCH_COMPOSITION: usize = 2;
const STAGE_FINE_GRAINED: usize = 3;
const STAGE_CANDIDATE_EVAL: usize = 4;

/// The builder's LPPM set: either composed piecewise (`Owned`) or taken
/// wholesale from another engine without copying (`Shared`).
enum LppmSet {
    Owned(Vec<Arc<dyn Lppm>>),
    Shared(Arc<[Arc<dyn Lppm>]>),
}

impl LppmSet {
    fn is_empty(&self) -> bool {
        match self {
            LppmSet::Owned(v) => v.is_empty(),
            LppmSet::Shared(s) => s.is_empty(),
        }
    }

    fn len(&self) -> usize {
        match self {
            LppmSet::Owned(v) => v.len(),
            LppmSet::Shared(s) => s.len(),
        }
    }

    fn into_shared(self) -> Arc<[Arc<dyn Lppm>]> {
        match self {
            LppmSet::Owned(v) => v.into(),
            LppmSet::Shared(s) => s,
        }
    }
}

impl EngineBuilder {
    /// Starts a builder from a trained attack suite, with an empty LPPM
    /// set, the paper configuration and the sequential executor.
    pub fn new(suite: Arc<AttackSuite>) -> Self {
        Self {
            suite,
            lppms: LppmSet::Owned(Vec::new()),
            config: MoodConfig::paper_default(),
            executor: Arc::new(SequentialExecutor),
            store: None,
            candidate_budget: usize::MAX,
            obs: None,
        }
    }

    /// Starts from the paper's full setup: POI/PIT/AP attacks trained on
    /// `background` and the LPPM set {Geo-I, TRL, HMC}. Training runs
    /// through a fresh [`ProfileStore`], which the built engine keeps —
    /// see [`EngineBuilder::paper_default_with_store`] to share one
    /// store (and its trained profiles) across several engines.
    ///
    /// # Panics
    ///
    /// Panics when `background` is empty (attack training requires at
    /// least one profile).
    pub fn paper_default(background: &Dataset) -> Self {
        Self::paper_default_with_store(background, Arc::new(ProfileStore::new()))
    }

    /// [`EngineBuilder::paper_default`] with a caller-owned
    /// [`ProfileStore`]: attack training interns its trained profile
    /// sets in `store` (POI and PIT already share one extraction pass),
    /// so a second engine built over the same background dataset —
    /// another tenant, an ablation, a per-request rebuild — reuses them
    /// without building a single profile. The store's hit/miss/build
    /// counters are surfaced by [`MoodEngine::profile_store_counters`].
    ///
    /// # Panics
    ///
    /// Panics when `background` is empty.
    pub fn paper_default_with_store(background: &Dataset, store: Arc<ProfileStore>) -> Self {
        let suite = AttackSuite::train_with_store(
            &[
                &PoiAttack::paper_default() as &dyn Attack,
                &PitAttack::paper_default(),
                &ApAttack::paper_default(),
            ],
            background,
            &store,
        );
        Self::new(Arc::new(suite)).profile_store(store).lppms(vec![
            Arc::new(GeoI::paper_default()),
            Arc::new(Trl::paper_default()),
            Arc::new(Hmc::paper_default(background)),
        ])
    }

    /// Attaches the profile store the suite was trained through, so the
    /// engine can surface its hit/miss/build counters and hand the store
    /// to sibling builds ([`MoodEngine::profile_store`]).
    pub fn profile_store(mut self, store: Arc<ProfileStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Replaces the base LPPM set.
    pub fn lppms(mut self, lppms: Vec<Arc<dyn Lppm>>) -> Self {
        self.lppms = LppmSet::Owned(lppms);
        self
    }

    /// Replaces the base LPPM set with an already-shared one — e.g.
    /// [`MoodEngine::shared_lppms`] from a sibling engine. The set is
    /// shared by handle; no per-mechanism clones are made, so building
    /// config/ablation variants of an engine costs one `Arc` bump.
    pub fn lppms_shared(mut self, lppms: Arc<[Arc<dyn Lppm>]>) -> Self {
        self.lppms = LppmSet::Shared(lppms);
        self
    }

    /// Appends one LPPM to the base set. Appending to a shared set
    /// copies the handles first (copy-on-write).
    pub fn lppm(mut self, lppm: Arc<dyn Lppm>) -> Self {
        let mut owned = match self.lppms {
            LppmSet::Owned(v) => v,
            LppmSet::Shared(s) => s.to_vec(),
        };
        owned.push(lppm);
        self.lppms = LppmSet::Owned(owned);
        self
    }

    /// Replaces the whole configuration.
    pub fn config(mut self, config: MoodConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the engine seed (bit-for-bit reproducible protection).
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Caps the composition length explored by the search.
    pub fn max_composition_len(mut self, len: usize) -> Self {
        self.config.max_composition_len = len;
        self
    }

    /// Sets the candidate-evaluation executor (see [`crate::exec`]).
    pub fn executor(mut self, executor: Arc<dyn Executor>) -> Self {
        self.executor = executor;
        self
    }

    /// Caps the number of candidate variants a single
    /// [`MoodEngine::protect_user`] call may fully score (deadline-aware
    /// graceful degradation; default: unlimited).
    ///
    /// The budget is consumed in job order — the same order every
    /// executor backend reports verdicts in — so the cut point is a pure
    /// function of `(budget, candidates scored so far)` and a replayed
    /// request degrades identically on any backend and thread count.
    /// Candidates past the cut are skipped whole, never partially
    /// scored: the scratch contract is untouched. A call that exhausts
    /// its budget returns [`UserProtection::degraded`]` == true`.
    pub fn candidate_budget(mut self, budget: usize) -> Self {
        self.candidate_budget = budget;
        self
    }

    /// Attaches a per-stage duration observer (build it over
    /// [`ENGINE_STAGES`]). Purely observational: stage wall-clock totals
    /// and operation counts accumulate into `agg`, and protection
    /// results stay bit-identical with or without an observer. When no
    /// observer is attached (the default) the engine never reads the
    /// clock on the protection path.
    pub fn stage_observer(mut self, agg: Arc<StageAgg>) -> Self {
        self.obs = Some(agg);
        self
    }

    /// Builds the engine.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::EmptyLppmSet`] when no LPPM was provided
    /// and [`EngineError::InvalidConfig`] when the configuration fails
    /// validation.
    pub fn build(self) -> Result<MoodEngine, EngineError> {
        if self.lppms.is_empty() {
            return Err(EngineError::EmptyLppmSet);
        }
        self.config.check().map_err(EngineError::InvalidConfig)?;
        let max_len = self.config.max_composition_len.min(self.lppms.len());
        let base = self.lppms.into_shared();
        let compositions = if max_len >= 2 {
            enumerate_compositions(&base, 2, max_len)
        } else {
            Vec::new()
        };
        Ok(MoodEngine {
            suite: self.suite,
            base,
            compositions,
            config: self.config,
            executor: self.executor,
            scratch: ScratchPool::new(),
            store: self.store,
            candidate_budget: self.candidate_budget,
            obs: self.obs,
        })
    }
}

/// The MooD engine: Algorithm 1 of the paper, wired to an attack suite,
/// a base LPPM set and a configuration.
///
/// The engine is immutable and `Sync`; [`crate::protect_dataset`] runs it
/// from many threads at once.
///
/// # Examples
///
/// ```
/// use mood_core::{MoodEngine, UserClass};
/// use mood_synth::presets;
/// use mood_trace::TimeDelta;
///
/// let ds = presets::privamov_like().scaled(0.15).generate();
/// let (background, test) = ds.split_chronological(TimeDelta::from_days(15));
/// let engine = MoodEngine::paper_default(&background);
/// let victim = test.iter().next().unwrap();
/// let result = engine.protect_user(victim);
/// assert_eq!(result.user, victim.user());
/// assert!(result.original_records > 0);
/// ```
pub struct MoodEngine {
    suite: Arc<AttackSuite>,
    base: Arc<[Arc<dyn Lppm>]>,
    compositions: Vec<Composition>,
    config: MoodConfig,
    executor: Arc<dyn Executor>,
    scratch: ScratchPool,
    store: Option<Arc<ProfileStore>>,
    candidate_budget: usize,
    obs: Option<Arc<StageAgg>>,
}

/// Per-`protect_user` candidate budget: how many variants may still be
/// fully scored, and whether the cut has already fired. Consumed in job
/// order, so the skipped set is identical on every backend.
struct BudgetState {
    remaining: usize,
    exhausted: bool,
}

impl BudgetState {
    fn new(budget: usize) -> Self {
        Self {
            remaining: budget,
            exhausted: false,
        }
    }

    fn unlimited() -> Self {
        Self::new(usize::MAX)
    }
}

impl std::fmt::Debug for MoodEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MoodEngine")
            .field("attacks", &self.suite.len())
            .field(
                "lppms",
                &self.base.iter().map(|l| l.name()).collect::<Vec<_>>(),
            )
            .field("compositions", &self.compositions.len())
            .field("config", &self.config)
            .field("executor", &self.executor.name())
            .finish()
    }
}

impl MoodEngine {
    /// Creates an engine from a trained attack suite, a base LPPM set
    /// `L`, and a configuration. The composition space `C − L` is
    /// enumerated eagerly (it is tiny: 12 chains for n = 3). Candidate
    /// evaluation runs on the sequential executor; use
    /// [`EngineBuilder`] to choose a parallel backend.
    ///
    /// # Panics
    ///
    /// Panics when `base` is empty or the configuration is invalid. The
    /// non-panicking equivalent is [`EngineBuilder::build`].
    pub fn new(suite: Arc<AttackSuite>, base: Vec<Arc<dyn Lppm>>, config: MoodConfig) -> Self {
        assert!(!base.is_empty(), "MooD needs at least one LPPM");
        config.validate();
        EngineBuilder::new(suite)
            .lppms(base)
            .config(config)
            .build()
            .expect("inputs validated above")
    }

    /// The paper's full setup: POI/PIT/AP attacks trained on
    /// `background`, the LPPM set {Geo-I, TRL, HMC} with the paper's
    /// parameters, and [`MoodConfig::paper_default`].
    ///
    /// # Panics
    ///
    /// Panics when `background` is empty.
    pub fn paper_default(background: &Dataset) -> Self {
        EngineBuilder::paper_default(background)
            .build()
            .expect("paper defaults are valid")
    }

    /// The trained attack suite driving the resilience checks.
    pub fn suite(&self) -> &AttackSuite {
        &self.suite
    }

    /// A shareable handle to the suite, for building sibling engines
    /// (different configs against the same adversary) without retraining.
    pub fn shared_suite(&self) -> Arc<AttackSuite> {
        Arc::clone(&self.suite)
    }

    /// The profile store the suite was trained through, when the engine
    /// was built with one ([`EngineBuilder::paper_default`] and
    /// [`EngineBuilder::paper_default_with_store`] always attach it).
    /// Hand it to [`EngineBuilder::paper_default_with_store`] to train a
    /// sibling engine over the same background for free.
    pub fn profile_store(&self) -> Option<Arc<ProfileStore>> {
        self.store.as_ref().map(Arc::clone)
    }

    /// Hit/miss/build counters of the engine's profile store — the
    /// observable proof that retraining over an already-seen background
    /// dataset builds zero additional profiles. All zeros when the
    /// engine was built without a store.
    pub fn profile_store_counters(&self) -> StoreCounters {
        self.store
            .as_ref()
            .map(|s| s.counters())
            .unwrap_or_default()
    }

    /// The base LPPM set `L`.
    pub fn lppms(&self) -> &[Arc<dyn Lppm>] {
        &self.base
    }

    /// A shareable handle to the base LPPM set, for building sibling
    /// engines (ablations, different configs or executors over the same
    /// mechanisms) without copying the set — pass it to
    /// [`EngineBuilder::lppms_shared`].
    pub fn shared_lppms(&self) -> Arc<[Arc<dyn Lppm>]> {
        Arc::clone(&self.base)
    }

    /// How many candidate evaluations started from a recycled, already
    /// warmed-up scratch buffer instead of a fresh allocation — the
    /// observable evidence that the candidate hot path stops allocating
    /// once the per-worker arenas have warmed up. (A buffer goes cold
    /// only when a resilient candidate keeps it for publication — the
    /// rare, once-per-search-stage case.)
    pub fn scratch_reuses(&self) -> u64 {
        self.scratch.reuses.load(Ordering::Relaxed)
    }

    /// How many candidate evaluations scored the attack suite on an
    /// already warmed-up [`AttackScratch`] — the attack-side counterpart
    /// of [`MoodEngine::scratch_reuses`]: per-trace features (heatmaps,
    /// POI clusters, Markov chains) built into recycled per-worker
    /// buffers instead of fresh allocations.
    pub fn attack_scratch_reuses(&self) -> u64 {
        self.scratch.attack_reuses.load(Ordering::Relaxed)
    }

    /// Rasterization-cache hits across all attack scratches: trace
    /// cell-sequences served from the per-worker `(grid, trace)` cache
    /// (exact, comparison-verified) instead of recomputed. Counters are
    /// drained from scratches as leases return to the pool, so in-flight
    /// work surfaces at the next candidate-batch boundary.
    pub fn raster_cache_hits(&self) -> u64 {
        self.scratch.raster_hits.load(Ordering::Relaxed)
    }

    /// Rasterization-cache misses (fresh rasterizations), same
    /// accounting as [`MoodEngine::raster_cache_hits`].
    pub fn raster_cache_misses(&self) -> u64 {
        self.scratch.raster_misses.load(Ordering::Relaxed)
    }

    /// The enumerated composition space `C − L` (length ≥ 2 chains).
    pub fn compositions(&self) -> &[Composition] {
        &self.compositions
    }

    /// The engine configuration.
    pub fn config(&self) -> &MoodConfig {
        &self.config
    }

    /// The executor candidate evaluations run on.
    pub fn executor(&self) -> &dyn Executor {
        self.executor.as_ref()
    }

    /// Deterministic RNG for one (trace, variant) application: derived
    /// from the engine seed, the trace's user, its start time (so each
    /// sub-trace draws fresh noise) and the variant index.
    fn variant_rng(&self, trace: &Trace, variant_idx: usize) -> StdRng {
        let mut h = self.config.seed;
        for v in [
            trace.user().as_u64(),
            trace.start_time().as_unix() as u64,
            variant_idx as u64,
        ] {
            h ^= mix64(v);
            h = mix64(h);
        }
        StdRng::seed_from_u64(h)
    }

    /// Evaluates one candidate job on a scratch arena: applies the
    /// variant under its derived RNG stream — writing the protected
    /// records into the scratch buffer instead of a fresh allocation —
    /// and judges it against the attack suite on the scratch's attack
    /// arena (features rebuilt into per-worker buffers, profile matching
    /// pruned by the running best, rasterizations shared between the
    /// LPPM fast paths and the attacks). Rejected candidates hand their
    /// buffer back to the scratch for the next candidate; only a
    /// resilient candidate (the rare case) keeps its buffer, inside the
    /// returned [`ProtectedTrace`].
    fn evaluate_candidate(
        &self,
        trace: &Trace,
        job: CandidateJob<'_>,
        scratch: &mut CandidateScratch,
    ) -> Option<ProtectedTrace> {
        scratch.rng = self.variant_rng(trace, job.variant_idx);
        let mut buf = std::mem::take(&mut scratch.records);
        if buf.capacity() > 0 {
            self.scratch.reuses.fetch_add(1, Ordering::Relaxed);
        }
        if scratch.attack.is_warm() {
            self.scratch.attack_reuses.fetch_add(1, Ordering::Relaxed);
        }
        job.lppm.protect_into_with(
            trace,
            &mut scratch.rng,
            &mut buf,
            scratch.attack.raster_mut(),
        );
        // `protect_into_with` yields time-sorted records (the `Trace`
        // invariant of `protect`'s output), so this re-sort is a
        // stable identity pass: the candidate is byte-identical to
        // what `protect` would have returned.
        let candidate = Trace::new(trace.user(), buf).expect("LPPMs never produce an empty trace");
        if !self
            .suite
            .protects_with(&candidate, trace.user(), &mut scratch.attack)
        {
            scratch.records = candidate.into_records();
            return None;
        }
        let distortion = spatio_temporal_distortion(trace, &candidate);
        Some(ProtectedTrace {
            trace: candidate,
            lppm: job.lppm.name().to_string(),
            distortion_m: distortion,
        })
    }

    /// Submits every candidate job to the engine's executor and returns
    /// the verdicts in job order — independent of backend and thread
    /// count, since each job's randomness is a pure function of its
    /// variant index.
    ///
    /// Each worker slot evaluates its candidates on a scratch arena
    /// leased from the engine's recycling pool, so the hot path reuses
    /// protected-trace buffers and RNG state across candidates, batches
    /// and users instead of allocating per candidate.
    pub fn evaluate_candidates(
        &self,
        trace: &Trace,
        jobs: &[CandidateJob<'_>],
    ) -> Vec<Option<ProtectedTrace>> {
        // One aggregated observation for the whole batch (count =
        // candidates), never a per-candidate span: overhead stays
        // bounded by batch count, not candidate count.
        self.observe(STAGE_CANDIDATE_EVAL, jobs.len() as u64, || {
            exec::map_indexed_with(
                self.executor.as_ref(),
                jobs.len(),
                || self.scratch.take(),
                |lease, i| self.evaluate_candidate(trace, jobs[i], lease.scratch_mut()),
            )
        })
    }

    /// Runs `f`, attributing its wall time to `stage` when an observer
    /// is attached. Without one, this is exactly `f()` — no clock read.
    fn observe<R>(&self, stage: usize, count: u64, f: impl FnOnce() -> R) -> R {
        match &self.obs {
            Some(agg) => {
                let t0 = Instant::now();
                let out = f();
                agg.record_n(stage, t0.elapsed().as_nanos() as u64, count);
                out
            }
            None => f(),
        }
    }

    /// Tries every variant in `variants`, keeping the resilient one
    /// ranked first by `(distortion, variant_idx)` (Best LPPM Selection,
    /// §3.5; the index tiebreak pins ties to the earliest variant, which
    /// is what the sequential reference scan selected). Variant indices
    /// offset by `idx_base` keep single and composition RNG streams
    /// disjoint.
    fn best_resilient<'a, I>(
        &self,
        trace: &Trace,
        variants: I,
        idx_base: usize,
        budget: &mut BudgetState,
    ) -> Option<ProtectedTrace>
    where
        I: IntoIterator<Item = &'a dyn Lppm>,
    {
        let jobs: Vec<CandidateJob<'_>> = variants
            .into_iter()
            .enumerate()
            .map(|(i, lppm)| CandidateJob {
                variant_idx: idx_base + i,
                lppm,
            })
            .collect();
        // Deadline-aware cut: only the first `remaining` jobs (in job
        // order) are submitted, so the set of candidates ever scored is
        // a pure function of the budget — identical across executor
        // backends and thread counts. Skipped candidates are skipped
        // whole; nothing is ever partially scored.
        let allowed = jobs.len().min(budget.remaining);
        if allowed < jobs.len() {
            budget.exhausted = true;
        }
        budget.remaining -= allowed;
        self.evaluate_candidates(trace, &jobs[..allowed])
            .into_iter()
            .enumerate()
            .filter_map(|(i, verdict)| verdict.map(|p| (i, p)))
            .min_by(|(ia, a), (ib, b)| {
                a.distortion_m
                    .total_cmp(&b.distortion_m)
                    .then_with(|| ia.cmp(ib))
            })
            .map(|(_, p)| p)
    }

    /// Single-LPPM stage (Algorithm 1 lines 4–14): the resilient single
    /// LPPM with the lowest distortion, if any.
    pub fn search_single(&self, trace: &Trace) -> Option<ProtectedTrace> {
        self.search_single_in(trace, &mut BudgetState::unlimited())
    }

    fn search_single_in(&self, trace: &Trace, budget: &mut BudgetState) -> Option<ProtectedTrace> {
        self.observe(STAGE_SEARCH_SINGLE, 1, || {
            self.best_resilient(trace, self.base.iter().map(|l| l as &dyn Lppm), 0, budget)
        })
    }

    /// Composition stage (lines 16–26): the resilient composition with
    /// the lowest distortion, if any.
    ///
    /// Note: the paper's line 26 reads `argmax M`; we interpret `M`
    /// uniformly as a distortion to minimize (the paper's own §3.5:
    /// "the lower the distortion the better"). See DESIGN.md.
    pub fn search_composition(&self, trace: &Trace) -> Option<ProtectedTrace> {
        self.search_composition_in(trace, &mut BudgetState::unlimited())
    }

    fn search_composition_in(
        &self,
        trace: &Trace,
        budget: &mut BudgetState,
    ) -> Option<ProtectedTrace> {
        self.observe(STAGE_SEARCH_COMPOSITION, 1, || {
            self.best_resilient(
                trace,
                self.compositions.iter().map(|c| c as &dyn Lppm),
                self.base.len(),
                budget,
            )
        })
    }

    /// The whole-trace Multi-LPPM Composition Search: singles first,
    /// compositions only when no single works (Algorithm 1's ordering).
    /// The boolean reports whether a composition was needed.
    pub fn search_whole(&self, trace: &Trace) -> Option<(ProtectedTrace, bool)> {
        self.search_whole_in(trace, &mut BudgetState::unlimited())
    }

    fn search_whole_in(
        &self,
        trace: &Trace,
        budget: &mut BudgetState,
    ) -> Option<(ProtectedTrace, bool)> {
        if let Some(p) = self.search_single_in(trace, budget) {
            return Some((p, false));
        }
        self.search_composition_in(trace, budget).map(|p| (p, true))
    }

    /// Recursive fine-grained protection (lines 27–36): whole-trace
    /// search on the sub-trace; on failure split in half by time and
    /// recurse while the sub-trace spans at least δ; below δ the records
    /// are erased.
    fn protect_recursive(
        &self,
        trace: &Trace,
        published: &mut Vec<ProtectedTrace>,
        stats: &mut FineGrainedStats,
        budget: &mut BudgetState,
    ) {
        stats.sub_traces_total += 1;
        if let Some((p, _)) = self.search_whole_in(trace, budget) {
            stats.sub_traces_protected += 1;
            stats.records_published += trace.len();
            published.push(p);
            return;
        }
        if trace.duration() >= self.config.delta {
            // A degenerate split (all records at one instant) yields
            // nothing to recurse on; treat the sub-trace as
            // unprotectable rather than looping.
            match self.config.split_strategy.split(trace) {
                Some((l, r)) => {
                    self.protect_recursive(&l, published, stats, budget);
                    self.protect_recursive(&r, published, stats, budget);
                }
                None => stats.records_dropped += trace.len(),
            }
        } else {
            stats.records_dropped += trace.len();
        }
    }

    /// Protects one user's trace end to end (Algorithm 1 plus the §4.2
    /// experimental protocol) and classifies the user.
    pub fn protect_user(&self, trace: &Trace) -> UserProtection {
        // The raw-trace check runs the attacks concurrently when the
        // executor has threads to spare; the verdict is the same either
        // way (a union over attacks and strict scratch/plain verdict
        // equivalence), so determinism is unaffected. The sequential
        // variant scores on a pooled scratch, which also pre-warms the
        // rasterization cache for the raw trace the HMC-first candidate
        // variants are about to re-raster. It is deliberately outside
        // the candidate budget: the user's taxonomy class must not
        // depend on how much compute the request was granted.
        let naturally_protected = self.observe(STAGE_RAW_CHECK, 1, || {
            if self.executor.max_threads() > 1 {
                self.suite.protects_concurrent(trace, trace.user())
            } else {
                let mut lease = self.scratch.take();
                self.suite
                    .protects_with(trace, trace.user(), &mut lease.scratch_mut().attack)
            }
        });

        let mut budget = BudgetState::new(self.candidate_budget);
        if let Some((protected, via_composition)) = self.search_whole_in(trace, &mut budget) {
            let class = if naturally_protected {
                UserClass::NaturallyProtected
            } else if via_composition {
                UserClass::MultiLppm
            } else {
                UserClass::SingleLppm
            };
            return UserProtection {
                user: trace.user(),
                class,
                outcome: ProtectionOutcome::Whole(protected),
                original_records: trace.len(),
                degraded: budget.exhausted,
            };
        }

        // Fine-grained stage: initial windows (24 h in the paper), then
        // recursive halving with the δ floor. An exhausted budget makes
        // every remaining whole-trace search come up empty, so the
        // remaining sub-traces drop their records — deterministically,
        // since the cut point is fixed by (budget, candidates scored).
        let mut published = Vec::new();
        let mut stats = FineGrainedStats::default();
        self.observe(STAGE_FINE_GRAINED, 1, || match self.config.initial_window {
            Some(window) => {
                for sub in trace.windows(window) {
                    self.protect_recursive(&sub, &mut published, &mut stats, &mut budget);
                }
            }
            None => self.protect_recursive(trace, &mut published, &mut stats, &mut budget),
        });

        let class = if naturally_protected {
            UserClass::NaturallyProtected
        } else if published.is_empty() {
            UserClass::Unprotectable
        } else {
            UserClass::FineGrained
        };
        UserProtection {
            user: trace.user(),
            class,
            outcome: ProtectionOutcome::FineGrained { published, stats },
            original_records: trace.len(),
            degraded: budget.exhausted,
        }
    }
}

/// SplitMix64 finalizer for deterministic RNG stream derivation.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mood_trace::{TimeDelta, UserId};

    fn mini_world() -> (Dataset, Dataset) {
        let ds = mood_synth::presets::privamov_like().scaled(0.25).generate();
        ds.split_chronological(TimeDelta::from_days(15))
    }

    #[test]
    fn paper_default_wiring() {
        let (bg, _) = mini_world();
        let engine = MoodEngine::paper_default(&bg);
        assert_eq!(engine.lppms().len(), 3);
        assert_eq!(engine.compositions().len(), 12); // C - L for n = 3
        assert_eq!(engine.suite().len(), 3);
    }

    #[test]
    fn protect_user_is_deterministic() {
        let (bg, test) = mini_world();
        let engine = MoodEngine::paper_default(&bg);
        let trace = test.iter().next().unwrap();
        let a = engine.protect_user(trace);
        let b = engine.protect_user(trace);
        assert_eq!(a, b);
    }

    #[test]
    fn published_variants_resist_the_suite() {
        let (bg, test) = mini_world();
        let engine = MoodEngine::paper_default(&bg);
        for trace in test.iter().take(6) {
            let result = engine.protect_user(trace);
            for p in result.outcome.published() {
                assert!(
                    engine.suite().protects(&p.trace, trace.user()),
                    "published variant of {} re-identified",
                    trace.user()
                );
                assert!(p.distortion_m.is_finite() && p.distortion_m >= 0.0);
                assert!(!p.lppm.is_empty());
            }
        }
    }

    #[test]
    fn single_stage_preferred_over_composition() {
        let (bg, test) = mini_world();
        let engine = MoodEngine::paper_default(&bg);
        for trace in test.iter().take(6) {
            if let Some(p_single) = engine.search_single(trace) {
                let (p, via_comp) = engine.search_whole(trace).unwrap();
                assert!(!via_comp);
                assert_eq!(p.lppm, p_single.lppm);
                // single names contain no chain arrow
                assert!(!p.lppm.contains('→'));
            }
        }
    }

    #[test]
    fn selection_minimizes_distortion_among_singles() {
        let (bg, test) = mini_world();
        let engine = MoodEngine::paper_default(&bg);
        let trace = test.iter().next().unwrap();
        if let Some(best) = engine.search_single(trace) {
            // re-derive every resilient single's distortion and check min
            for (i, lppm) in engine.lppms().iter().enumerate() {
                let mut rng = engine.variant_rng(trace, i);
                let cand = lppm.protect(trace, &mut rng);
                if engine.suite().protects(&cand, trace.user()) {
                    let d = spatio_temporal_distortion(trace, &cand);
                    assert!(best.distortion_m <= d + 1e-9);
                }
            }
        }
    }

    #[test]
    fn fine_grained_accounts_every_record() {
        let (bg, test) = mini_world();
        let engine = MoodEngine::paper_default(&bg);
        for trace in test.iter() {
            let result = engine.protect_user(trace);
            if let ProtectionOutcome::FineGrained { stats, .. } = &result.outcome {
                assert_eq!(
                    stats.records_published + stats.records_dropped,
                    trace.len(),
                    "record accounting broken for {}",
                    trace.user()
                );
                assert!(stats.sub_traces_protected <= stats.sub_traces_total);
            }
        }
    }

    #[test]
    fn classes_are_consistent_with_outcomes() {
        let (bg, test) = mini_world();
        let engine = MoodEngine::paper_default(&bg);
        for trace in test.iter() {
            let r = engine.protect_user(trace);
            match (&r.class, &r.outcome) {
                (UserClass::SingleLppm | UserClass::MultiLppm, ProtectionOutcome::Whole(_)) => {}
                (UserClass::NaturallyProtected, _) => {}
                (UserClass::FineGrained, ProtectionOutcome::FineGrained { published, .. }) => {
                    assert!(!published.is_empty());
                }
                (UserClass::Unprotectable, ProtectionOutcome::FineGrained { published, .. }) => {
                    assert!(published.is_empty());
                }
                (class, outcome) => {
                    panic!("inconsistent class {class:?} for outcome {outcome:?}")
                }
            }
        }
    }

    #[test]
    fn max_composition_len_one_disables_compositions() {
        let (bg, _) = mini_world();
        let full = MoodEngine::paper_default(&bg);
        let mut config = MoodConfig::paper_default();
        config.max_composition_len = 1;
        let engine = EngineBuilder::new(Arc::new(AttackSuite::train(
            &[&ApAttack::paper_default() as &dyn Attack],
            &bg,
        )))
        .lppms_shared(full.shared_lppms())
        .config(config)
        .build()
        .unwrap();
        assert!(engine.compositions().is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one LPPM")]
    fn rejects_empty_lppm_set() {
        let (bg, _) = mini_world();
        let suite = Arc::new(AttackSuite::train(
            &[&ApAttack::paper_default() as &dyn Attack],
            &bg,
        ));
        MoodEngine::new(suite, vec![], MoodConfig::paper_default());
    }

    #[test]
    fn algorithm1_verbatim_mode_without_initial_window() {
        // initial_window = None runs Algorithm 1 exactly as printed:
        // recursive halving starts on the whole trace.
        let (bg, test) = mini_world();
        let base = MoodEngine::paper_default(&bg);
        let mut config = MoodConfig::paper_default();
        config.initial_window = None;
        let engine = EngineBuilder::new(Arc::new(AttackSuite::train(
            &[&ApAttack::paper_default() as &dyn Attack],
            &bg,
        )))
        .lppms_shared(base.shared_lppms())
        .config(config)
        .build()
        .unwrap();
        for trace in test.iter().take(3) {
            let r = engine.protect_user(trace);
            if let crate::ProtectionOutcome::FineGrained { stats, .. } = &r.outcome {
                assert_eq!(stats.records_published + stats.records_dropped, trace.len());
            }
        }
    }

    #[test]
    fn split_strategies_all_account_records() {
        let (bg, test) = mini_world();
        let base = MoodEngine::paper_default(&bg);
        for strategy in [
            crate::SplitStrategy::Halving,
            crate::SplitStrategy::LargestGap,
            crate::SplitStrategy::InterPoi,
        ] {
            let mut config = MoodConfig::paper_default();
            config.split_strategy = strategy;
            let engine = EngineBuilder::new(base.shared_suite())
                .lppms_shared(base.shared_lppms())
                .config(config)
                .build()
                .unwrap();
            for trace in test.iter().take(4) {
                let r = engine.protect_user(trace);
                if let crate::ProtectionOutcome::FineGrained { stats, .. } = &r.outcome {
                    assert_eq!(
                        stats.records_published + stats.records_dropped,
                        trace.len(),
                        "{strategy}"
                    );
                }
            }
        }
    }

    #[test]
    fn four_lppm_engine_enumerates_the_full_space() {
        // extending the base set with a 4th LPPM (the paper's §6
        // extension hook) grows |C| to Σ 4!/(4-i)! = 64
        let (bg, test) = mini_world();
        let base = MoodEngine::paper_default(&bg);
        let engine = EngineBuilder::new(base.shared_suite())
            .lppms_shared(base.shared_lppms())
            .lppm(Arc::new(mood_lppm::SpatialCloaking::from_background(
                &bg, 800.0,
            )))
            .build()
            .unwrap();
        assert_eq!(engine.lppms().len(), 4);
        assert_eq!(engine.lppms().len() + engine.compositions().len(), 64);
        // and the bigger search space still produces resilient output
        let trace = test.iter().next().unwrap();
        let r = engine.protect_user(trace);
        for p in r.outcome.published() {
            assert!(engine.suite().protects(&p.trace, trace.user()));
        }
    }

    #[test]
    fn builder_rejects_empty_lppm_set() {
        let (bg, _) = mini_world();
        let suite = Arc::new(AttackSuite::train(
            &[&ApAttack::paper_default() as &dyn Attack],
            &bg,
        ));
        let err = EngineBuilder::new(suite).build().unwrap_err();
        assert_eq!(err, EngineError::EmptyLppmSet);
        assert!(err.to_string().contains("at least one LPPM"));
    }

    #[test]
    fn builder_rejects_invalid_config() {
        let (bg, _) = mini_world();
        let mut config = MoodConfig::paper_default();
        config.delta = mood_trace::TimeDelta::from_secs(0);
        let err = EngineBuilder::paper_default(&bg)
            .config(config)
            .build()
            .unwrap_err();
        match err {
            EngineError::InvalidConfig(msg) => assert!(msg.contains("delta")),
            other => panic!("wrong error {other:?}"),
        }
    }

    #[test]
    fn builder_customizes_seed_depth_and_executor() {
        let (bg, _) = mini_world();
        let engine = EngineBuilder::paper_default(&bg)
            .seed(99)
            .max_composition_len(1)
            .executor(crate::ExecutorKind::WorkStealing.build(4))
            .build()
            .unwrap();
        assert_eq!(engine.config().seed, 99);
        assert!(engine.compositions().is_empty());
        assert_eq!(engine.executor().name(), "steal");
        assert_eq!(engine.executor().max_threads(), 4);
    }

    #[test]
    fn protection_is_identical_across_candidate_executors() {
        let (bg, test) = mini_world();
        let reference = MoodEngine::paper_default(&bg);
        for kind in crate::ExecutorKind::all() {
            for threads in [1usize, 2, 8] {
                let engine = EngineBuilder::paper_default(&bg)
                    .executor(kind.build(threads))
                    .build()
                    .unwrap();
                for trace in test.iter().take(4) {
                    assert_eq!(
                        engine.protect_user(trace),
                        reference.protect_user(trace),
                        "{kind} x{threads} diverged on {}",
                        trace.user()
                    );
                }
            }
        }
    }

    #[test]
    fn stage_observer_changes_nothing_but_records_stages() {
        let (bg, test) = mini_world();
        let plain = MoodEngine::paper_default(&bg);
        let agg = Arc::new(StageAgg::new(&ENGINE_STAGES));
        let observed = EngineBuilder::paper_default(&bg)
            .stage_observer(Arc::clone(&agg))
            .build()
            .unwrap();
        for trace in test.iter().take(4) {
            assert_eq!(
                plain.protect_user(trace),
                observed.protect_user(trace),
                "observer must not change protection results for {}",
                trace.user()
            );
        }
        let totals = agg.snapshot();
        let stage = |name: &str| totals.iter().find(|t| t.stage == name);
        let raw = stage("raw_check").expect("raw check observed");
        assert_eq!(raw.count, 4, "one raw check per user");
        let eval = stage("candidate_eval").expect("candidate evaluation observed");
        assert!(
            eval.count >= 4 * 3,
            "at least one single-LPPM batch per user, got {}",
            eval.count
        );
        assert!(
            stage("search_single").is_some(),
            "single-LPPM stage observed"
        );
    }

    #[test]
    fn candidate_budget_degrades_deterministically() {
        let (bg, test) = mini_world();
        let unlimited = MoodEngine::paper_default(&bg);
        let starved = EngineBuilder::paper_default(&bg)
            .candidate_budget(1)
            .build()
            .unwrap();
        let mut saw_degraded = false;
        for trace in test.iter().take(6) {
            let a = starved.protect_user(trace);
            let b = starved.protect_user(trace);
            assert_eq!(a, b, "budgeted protection must be deterministic");
            saw_degraded |= a.degraded;
            // Degraded output is still made only of fully scored
            // candidates: whatever is published resists the suite.
            for p in a.outcome.published() {
                assert!(
                    unlimited.suite().protects(&p.trace, trace.user()),
                    "degraded output of {} not resilient",
                    trace.user()
                );
            }
            assert!(
                !unlimited.protect_user(trace).degraded,
                "an unbudgeted engine never degrades"
            );
        }
        assert!(
            saw_degraded,
            "budget=1 must exhaust the candidate search for at least one user"
        );
    }

    #[test]
    fn budgeted_protection_is_identical_across_executors() {
        // The cut point is a prefix in deterministic job order, so the
        // degraded result must not depend on backend or thread count.
        let (bg, test) = mini_world();
        let reference = EngineBuilder::paper_default(&bg)
            .candidate_budget(7)
            .build()
            .unwrap();
        for kind in crate::ExecutorKind::all() {
            for threads in [1usize, 4] {
                let engine = EngineBuilder::paper_default(&bg)
                    .candidate_budget(7)
                    .executor(kind.build(threads))
                    .build()
                    .unwrap();
                for trace in test.iter().take(3) {
                    assert_eq!(
                        engine.protect_user(trace),
                        reference.protect_user(trace),
                        "{kind} x{threads} diverged under budget on {}",
                        trace.user()
                    );
                }
            }
        }
    }

    #[test]
    fn huge_budget_equals_the_unlimited_engine() {
        let (bg, test) = mini_world();
        let unlimited = MoodEngine::paper_default(&bg);
        let roomy = EngineBuilder::paper_default(&bg)
            .candidate_budget(usize::MAX)
            .build()
            .unwrap();
        for trace in test.iter().take(4) {
            let r = roomy.protect_user(trace);
            assert!(!r.degraded);
            assert_eq!(unlimited.protect_user(trace), r);
        }
    }

    #[test]
    fn evaluate_candidates_reports_in_job_order() {
        let (bg, test) = mini_world();
        let engine = MoodEngine::paper_default(&bg);
        let trace = test.iter().next().unwrap();
        let jobs: Vec<crate::CandidateJob<'_>> = engine
            .lppms()
            .iter()
            .enumerate()
            .map(|(i, l)| crate::CandidateJob {
                variant_idx: i,
                lppm: l as &dyn Lppm,
            })
            .collect();
        let verdicts = engine.evaluate_candidates(trace, &jobs);
        assert_eq!(verdicts.len(), jobs.len());
        // Resilient verdicts must agree with a direct re-derivation.
        for (i, v) in verdicts.iter().enumerate() {
            let mut rng = engine.variant_rng(trace, i);
            let cand = engine.lppms()[i].protect(trace, &mut rng);
            let resilient = engine.suite().protects(&cand, trace.user());
            assert_eq!(v.is_some(), resilient, "variant {i}");
        }
    }

    #[test]
    fn scratch_arena_is_reused_after_warmup() {
        let (bg, test) = mini_world();
        let engine = MoodEngine::paper_default(&bg);
        let trace = test.iter().next().unwrap();
        // First batch warms the arena (one fresh allocation per worker
        // slot); every later batch on the same worker starts from a
        // recycled buffer.
        let _ = engine.protect_user(trace);
        let after_warmup = engine.scratch_reuses();
        assert!(
            after_warmup > 0,
            "a whole-user search runs several candidate batches; all but \
             the first per worker must reuse the arena"
        );
        let _ = engine.protect_user(trace);
        assert!(
            engine.scratch_reuses() > after_warmup,
            "later users must keep reusing the warmed-up arenas"
        );
        // Reuse must not change results (byte-identical determinism).
        assert_eq!(engine.protect_user(trace), engine.protect_user(trace));
    }

    #[test]
    fn attack_scratch_is_reused_and_rasterizations_are_shared() {
        let (bg, test) = mini_world();
        let engine = MoodEngine::paper_default(&bg);
        for trace in test.iter() {
            let _ = engine.protect_user(trace);
        }
        // Multi-candidate scoring must run on warmed attack arenas...
        assert!(
            engine.attack_scratch_reuses() > 0,
            "candidate scoring never reused a warm attack scratch"
        );
        // ...and the shared raster cache must have served repeats: the
        // raw trace is rasterized by the suite's AP profile and again by
        // every HMC-first candidate variant.
        assert!(
            engine.raster_cache_misses() > 0,
            "raster cache never populated"
        );
        assert!(
            engine.raster_cache_hits() > 0,
            "raster cache never hit: raw-trace rasterizations not shared"
        );
    }

    #[test]
    fn sibling_engine_trains_for_free_through_the_shared_store() {
        let (bg, test) = mini_world();
        let first = MoodEngine::paper_default(&bg);
        let store = first
            .profile_store()
            .expect("paper_default always attaches a store");
        let cold = first.profile_store_counters();
        assert!(cold.misses > 0 && cold.profile_builds > 0);
        // POI and PIT share one extraction pass even inside one suite.
        assert!(cold.hits > 0, "PIT must reuse POI's profile extraction");

        let second = EngineBuilder::paper_default_with_store(&bg, store)
            .build()
            .unwrap();
        let warm = second.profile_store_counters();
        assert_eq!(
            warm.profile_builds, cold.profile_builds,
            "second engine over the same background must build zero profiles"
        );
        assert_eq!(warm.misses, cold.misses);
        assert!(warm.hits > cold.hits);

        // Shared profiles must not change verdicts.
        let trace = test.iter().next().unwrap();
        assert_eq!(first.protect_user(trace), second.protect_user(trace));
    }

    #[test]
    fn engines_without_a_store_report_zero_counters() {
        let (bg, _) = mini_world();
        let suite = Arc::new(AttackSuite::train(
            &[&ApAttack::paper_default() as &dyn Attack],
            &bg,
        ));
        let engine = EngineBuilder::new(suite)
            .lppms(vec![Arc::new(GeoI::paper_default())])
            .build()
            .unwrap();
        assert!(engine.profile_store().is_none());
        assert_eq!(engine.profile_store_counters(), StoreCounters::default());
    }

    #[test]
    fn shared_lppm_sets_are_not_copied() {
        let (bg, _) = mini_world();
        let base = MoodEngine::paper_default(&bg);
        let sibling = EngineBuilder::new(base.shared_suite())
            .lppms_shared(base.shared_lppms())
            .seed(1234)
            .build()
            .unwrap();
        // Same allocation, not a clone: the slices share an address.
        assert!(std::ptr::eq(
            base.lppms().as_ptr(),
            sibling.lppms().as_ptr()
        ));
        assert_eq!(sibling.compositions().len(), base.compositions().len());
    }

    #[test]
    fn user_ids_preserved_in_outcomes() {
        let (bg, test) = mini_world();
        let engine = MoodEngine::paper_default(&bg);
        let trace = test.iter().next().unwrap();
        let r = engine.protect_user(trace);
        assert_eq!(r.user, trace.user());
        for p in r.outcome.published() {
            assert_eq!(p.trace.user(), trace.user());
        }
        assert_ne!(r.user, UserId::new(999_999));
    }
}
