//! The execution layer, re-exported from the standalone [`mood_exec`]
//! crate — *what* the engine evaluates, decoupled from *how* it runs.
//!
//! The trait, backends (`sequential`, `pool`, `steal`, `persistent`),
//! the per-worker scratch-slot helpers and [`ExecutorKind`] live in
//! `mood-exec`, so layers below the engine (notably
//! `mood_attacks::AttackSuite::evaluate_with`) can run on the same
//! backends without depending on `mood-core`. This module adds the one
//! engine-specific piece: [`CandidateJob`], the unit of Algorithm 1's
//! candidate search.
//!
//! See the [`mood_exec`] crate docs for the determinism contract
//! (byte-identical output for every backend × thread count) and the
//! worker-slot/scratch-arena API.

pub use mood_exec::{
    for_each_index_with, map_indexed, map_indexed_with, Executor, ExecutorKind,
    PersistentPoolExecutor, ScopedPoolExecutor, SequentialExecutor, WorkStealingExecutor,
};

use mood_lppm::Lppm;

/// One unit of engine work: apply variant `variant_idx` (an LPPM or a
/// composition chain) to a trace and judge the result.
///
/// The variant index doubles as the RNG-stream selector — see
/// [`crate::MoodEngine`]'s per-variant RNG derivation — which is what
/// makes candidate evaluation schedulable in any order.
#[derive(Clone, Copy)]
pub struct CandidateJob<'a> {
    /// Global variant index (singles first, then compositions).
    pub variant_idx: usize,
    /// The mechanism to apply.
    pub lppm: &'a dyn Lppm,
}

impl std::fmt::Debug for CandidateJob<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CandidateJob")
            .field("variant_idx", &self.variant_idx)
            .field("lppm", &self.lppm.name())
            .finish()
    }
}
