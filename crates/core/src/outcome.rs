use serde::{Deserialize, Serialize};

use mood_trace::{Trace, UserId};

/// One published protected trace variant: the obfuscated trace plus the
/// provenance MooD's Best-LPPM-Selection recorded for it.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtectedTrace {
    /// The obfuscated trace. Its user ID is still the *original* user —
    /// pseudonyms are assigned at publication time by
    /// [`crate::publish`].
    pub trace: Trace,
    /// Name of the protecting LPPM or composition chain.
    pub lppm: String,
    /// Spatio-temporal distortion of this variant versus the original
    /// (sub-)trace, in meters.
    pub distortion_m: f64,
}

/// Statistics of the fine-grained stage for one user (the paper's
/// Fig. 8: proportion of protected sub-traces).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FineGrainedStats {
    /// Sub-traces examined (initial windows plus recursive halves that
    /// reached a decision).
    pub sub_traces_total: usize,
    /// Sub-traces for which a protecting variant was found.
    pub sub_traces_protected: usize,
    /// Records published across protected sub-traces (counted on the
    /// *original* records, so data loss refers to the input dataset).
    pub records_published: usize,
    /// Original records erased because their sub-trace stayed
    /// vulnerable below δ.
    pub records_dropped: usize,
}

impl FineGrainedStats {
    /// Proportion of protected sub-traces in `[0, 1]` (1.0 when no
    /// sub-trace was examined).
    pub fn protected_ratio(&self) -> f64 {
        if self.sub_traces_total == 0 {
            1.0
        } else {
            self.sub_traces_protected as f64 / self.sub_traces_total as f64
        }
    }
}

/// How MooD protected (or failed to protect) one user's trace.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtectionOutcome {
    /// The whole trace is protected by one variant (single LPPM or
    /// composition).
    Whole(ProtectedTrace),
    /// The trace went through fine-grained protection: some sub-traces
    /// are published (each will get its own pseudonym), the rest are
    /// erased.
    FineGrained {
        /// The protected sub-traces, in time order.
        published: Vec<ProtectedTrace>,
        /// Sub-trace accounting for Fig. 8 / Fig. 10.
        stats: FineGrainedStats,
    },
}

impl ProtectionOutcome {
    /// Number of original records that will be erased.
    pub fn records_dropped(&self) -> usize {
        match self {
            ProtectionOutcome::Whole(_) => 0,
            ProtectionOutcome::FineGrained { stats, .. } => stats.records_dropped,
        }
    }

    /// The published protected traces (one for [`ProtectionOutcome::Whole`],
    /// any number for fine-grained outcomes).
    pub fn published(&self) -> Vec<&ProtectedTrace> {
        match self {
            ProtectionOutcome::Whole(p) => vec![p],
            ProtectionOutcome::FineGrained { published, .. } => published.iter().collect(),
        }
    }
}

/// The orphan-disease taxonomy of §3.1, assigned to every user by the
/// engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum UserClass {
    /// No attack re-identifies even the raw trace ("naturally
    /// insensitive" users, §4.3).
    NaturallyProtected,
    /// At least one single LPPM defeats all attacks (Eq. 5).
    SingleLppm,
    /// Only a composition of ≥ 2 LPPMs defeats all attacks (Eq. 6) —
    /// these are the orphan users MooD's composition search cures.
    MultiLppm,
    /// Only fine-grained sub-trace protection works (possibly
    /// partially).
    FineGrained,
    /// Not even fine-grained protection publishes a single sub-trace.
    Unprotectable,
}

impl UserClass {
    /// `true` for users that are orphan users with respect to the single
    /// LPPMs (Eq. 4): protected by no single mechanism.
    pub fn is_orphan(&self) -> bool {
        matches!(
            self,
            UserClass::MultiLppm | UserClass::FineGrained | UserClass::Unprotectable
        )
    }
}

impl std::fmt::Display for UserClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            UserClass::NaturallyProtected => "naturally protected",
            UserClass::SingleLppm => "single-LPPM protected",
            UserClass::MultiLppm => "multi-LPPM protected (orphan)",
            UserClass::FineGrained => "fine-grained protected (orphan)",
            UserClass::Unprotectable => "unprotectable (orphan)",
        };
        f.write_str(s)
    }
}

/// Complete result of protecting one user.
#[derive(Debug, Clone, PartialEq)]
pub struct UserProtection {
    /// The user whose trace was protected.
    pub user: UserId,
    /// Taxonomy class (drives Figs. 6/7 and the orphan analysis).
    pub class: UserClass,
    /// The protection outcome with the published material.
    pub outcome: ProtectionOutcome,
    /// Number of records in the user's original trace.
    pub original_records: usize,
    /// `true` when the engine's candidate budget ran out before every
    /// variant was tried: the outcome was assembled only from candidates
    /// that were fully scored (each verdict is complete — the budget
    /// skips whole candidates, never partial scores), so the published
    /// bytes are still deterministic, but a larger budget might have
    /// found a lower-distortion variant or protected more sub-traces.
    pub degraded: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orphan_classification() {
        assert!(!UserClass::NaturallyProtected.is_orphan());
        assert!(!UserClass::SingleLppm.is_orphan());
        assert!(UserClass::MultiLppm.is_orphan());
        assert!(UserClass::FineGrained.is_orphan());
        assert!(UserClass::Unprotectable.is_orphan());
    }

    #[test]
    fn fine_grained_ratio() {
        let stats = FineGrainedStats {
            sub_traces_total: 8,
            sub_traces_protected: 6,
            records_published: 120,
            records_dropped: 40,
        };
        assert!((stats.protected_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(FineGrainedStats::default().protected_ratio(), 1.0);
    }

    #[test]
    fn display_names_are_informative() {
        assert!(UserClass::MultiLppm.to_string().contains("orphan"));
        assert!(UserClass::NaturallyProtected
            .to_string()
            .contains("naturally"));
    }
}
