use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use mood_metrics::{DataLoss, DistortionBand};
use mood_trace::UserId;

use crate::{ProtectionOutcome, UserClass, UserProtection};

/// Per-user distortion record (feeds the paper's Fig. 9 utility bands).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistortionEntry {
    /// The protected user.
    pub user: UserId,
    /// Name of the selected LPPM / composition (for fine-grained users,
    /// the record-weighted representative of their sub-traces).
    pub lppm: String,
    /// Record-weighted mean spatio-temporal distortion in meters.
    pub distortion_m: f64,
}

/// Dataset-level result of a MooD protection run.
///
/// The report owns the full per-user outcomes (including the protected
/// traces, for publication via [`crate::publish`]) and pre-aggregates
/// everything the paper's figures need. The serializable part excludes
/// the traces.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtectionReport {
    /// Number of users in the protected dataset.
    pub users_total: usize,
    /// Users whose **raw** trace already resisted every attack.
    pub naturally_protected: usize,
    /// Users per protection class.
    pub class_counts: BTreeMap<UserClass, usize>,
    /// Record-level data loss (Eq. 7) of the whole run.
    pub data_loss: DataLoss,
    /// Per-user distortion entries for users with at least one published
    /// trace.
    pub distortions: Vec<DistortionEntry>,
    outcomes: Vec<UserProtection>,
}

impl ProtectionReport {
    /// Builds the report from per-user outcomes (sorted by user).
    pub fn from_outcomes(outcomes: Vec<UserProtection>) -> Self {
        let mut class_counts: BTreeMap<UserClass, usize> = BTreeMap::new();
        let mut data_loss = DataLoss::new();
        let mut distortions = Vec::new();
        let mut naturally_protected = 0;
        for o in &outcomes {
            *class_counts.entry(o.class).or_insert(0) += 1;
            if o.class == UserClass::NaturallyProtected {
                naturally_protected += 1;
            }
            match &o.outcome {
                ProtectionOutcome::Whole(p) => {
                    data_loss.add_kept(o.original_records);
                    distortions.push(DistortionEntry {
                        user: o.user,
                        lppm: p.lppm.clone(),
                        distortion_m: p.distortion_m,
                    });
                }
                ProtectionOutcome::FineGrained { published, stats } => {
                    data_loss.add_kept(stats.records_published);
                    data_loss.add_lost(stats.records_dropped);
                    if !published.is_empty() {
                        // record-weighted mean distortion over sub-traces
                        let total: f64 = published.iter().map(|p| p.trace.len() as f64).sum();
                        let mean = published
                            .iter()
                            .map(|p| p.distortion_m * p.trace.len() as f64)
                            .sum::<f64>()
                            / total;
                        // the most frequent LPPM among sub-traces
                        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
                        for p in published {
                            *counts.entry(p.lppm.as_str()).or_insert(0) += 1;
                        }
                        let lppm = counts
                            .into_iter()
                            .max_by_key(|(_, c)| *c)
                            .map(|(n, _)| n.to_string())
                            .unwrap_or_default();
                        distortions.push(DistortionEntry {
                            user: o.user,
                            lppm,
                            distortion_m: mean,
                        });
                    }
                }
            }
        }
        Self {
            users_total: outcomes.len(),
            naturally_protected,
            class_counts,
            data_loss,
            distortions,
            outcomes,
        }
    }

    /// The full per-user outcomes (with protected traces).
    pub fn outcomes(&self) -> &[UserProtection] {
        &self.outcomes
    }

    /// Users the Multi-LPPM Composition Search could **not** protect as
    /// a whole trace — the "MooD" bars of Figs. 6/7 (fine-grained users
    /// plus unprotectable users).
    pub fn composition_unprotected(&self) -> Vec<UserId> {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.outcome, ProtectionOutcome::FineGrained { .. }))
            .map(|o| o.user)
            .collect()
    }

    /// Number of users per distortion band (Fig. 9), over users with
    /// published data.
    pub fn distortion_bands(&self) -> BTreeMap<DistortionBand, usize> {
        let mut bands = BTreeMap::new();
        for b in DistortionBand::all() {
            bands.insert(b, 0);
        }
        for e in &self.distortions {
            *bands
                .entry(DistortionBand::classify(e.distortion_m))
                .or_insert(0) += 1;
        }
        bands
    }

    /// Count of users in `class`.
    pub fn class_count(&self, class: UserClass) -> usize {
        self.class_counts.get(&class).copied().unwrap_or(0)
    }

    /// The fine-grained per-user statistics (the paper's Fig. 8 bars),
    /// in user order.
    pub fn fine_grained_stats(&self) -> Vec<(UserId, crate::FineGrainedStats)> {
        self.outcomes
            .iter()
            .filter_map(|o| match &o.outcome {
                ProtectionOutcome::FineGrained { stats, .. } => Some((o.user, *stats)),
                _ => None,
            })
            .collect()
    }

    /// Serializable summary (no traces): suitable for writing to JSON in
    /// experiment outputs and the CLI.
    pub fn summary(&self) -> ReportSummary {
        ReportSummary {
            users_total: self.users_total,
            naturally_protected: self.naturally_protected,
            class_counts: self
                .class_counts
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            data_loss_percent: self.data_loss.percent(),
            records_total: self.data_loss.total_records(),
            records_lost: self.data_loss.lost_records(),
            composition_unprotected: self.composition_unprotected(),
            distortions: self.distortions.clone(),
        }
    }
}

/// Trace-free, serializable summary of a [`ProtectionReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReportSummary {
    /// Users in the protected dataset.
    pub users_total: usize,
    /// Users whose raw trace already resisted every attack.
    pub naturally_protected: usize,
    /// Users per protection class (display name → count).
    pub class_counts: BTreeMap<String, usize>,
    /// Data loss as a percentage of records.
    pub data_loss_percent: f64,
    /// Total records considered.
    pub records_total: usize,
    /// Records erased.
    pub records_lost: usize,
    /// Users the whole-trace composition search could not protect.
    pub composition_unprotected: Vec<UserId>,
    /// Per-user distortions.
    pub distortions: Vec<DistortionEntry>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FineGrainedStats, ProtectedTrace};
    use mood_geo::GeoPoint;
    use mood_trace::{Record, Timestamp, Trace};

    fn trace(user: u64, n: i64) -> Trace {
        let records: Vec<Record> = (0..n)
            .map(|i| {
                Record::new(
                    GeoPoint::new(46.2, 6.1).unwrap(),
                    Timestamp::from_unix(i * 600),
                )
            })
            .collect();
        Trace::new(UserId::new(user), records).unwrap()
    }

    fn whole_outcome(user: u64, records: i64, distortion: f64) -> UserProtection {
        UserProtection {
            user: UserId::new(user),
            class: UserClass::SingleLppm,
            outcome: ProtectionOutcome::Whole(ProtectedTrace {
                trace: trace(user, records),
                lppm: "Geo-I".into(),
                distortion_m: distortion,
            }),
            original_records: records as usize,
            degraded: false,
        }
    }

    fn fine_outcome(user: u64, published: i64, dropped: usize) -> UserProtection {
        let published_traces = if published > 0 {
            vec![ProtectedTrace {
                trace: trace(user, published),
                lppm: "Geo-I→TRL".into(),
                distortion_m: 1_500.0,
            }]
        } else {
            vec![]
        };
        UserProtection {
            user: UserId::new(user),
            class: if published > 0 {
                UserClass::FineGrained
            } else {
                UserClass::Unprotectable
            },
            outcome: ProtectionOutcome::FineGrained {
                published: published_traces,
                stats: FineGrainedStats {
                    sub_traces_total: 4,
                    sub_traces_protected: if published > 0 { 1 } else { 0 },
                    records_published: published as usize,
                    records_dropped: dropped,
                },
            },
            original_records: published as usize + dropped,
            degraded: false,
        }
    }

    #[test]
    fn aggregates_counts_and_loss() {
        let report = ProtectionReport::from_outcomes(vec![
            whole_outcome(1, 100, 200.0),
            fine_outcome(2, 60, 40),
            fine_outcome(3, 0, 80),
        ]);
        assert_eq!(report.users_total, 3);
        assert_eq!(report.class_count(UserClass::SingleLppm), 1);
        assert_eq!(report.class_count(UserClass::FineGrained), 1);
        assert_eq!(report.class_count(UserClass::Unprotectable), 1);
        assert_eq!(report.data_loss.total_records(), 100 + 100 + 80);
        assert_eq!(report.data_loss.lost_records(), 120);
        assert_eq!(report.composition_unprotected().len(), 2);
    }

    #[test]
    fn distortion_bands_classify() {
        let report = ProtectionReport::from_outcomes(vec![
            whole_outcome(1, 100, 200.0), // Low
            whole_outcome(2, 100, 700.0), // Medium
            fine_outcome(3, 60, 40),      // 1500 m -> High
        ]);
        let bands = report.distortion_bands();
        assert_eq!(bands[&DistortionBand::Low], 1);
        assert_eq!(bands[&DistortionBand::Medium], 1);
        assert_eq!(bands[&DistortionBand::High], 1);
        assert_eq!(bands[&DistortionBand::ExtremelyHigh], 0);
    }

    #[test]
    fn unprotectable_users_have_no_distortion_entry() {
        let report = ProtectionReport::from_outcomes(vec![fine_outcome(1, 0, 80)]);
        assert!(report.distortions.is_empty());
    }

    #[test]
    fn fine_grained_stats_are_exposed() {
        let report = ProtectionReport::from_outcomes(vec![
            whole_outcome(1, 100, 200.0),
            fine_outcome(2, 60, 40),
        ]);
        let stats = report.fine_grained_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].0, UserId::new(2));
        assert!((stats[0].1.protected_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn summary_serializes() {
        let report = ProtectionReport::from_outcomes(vec![whole_outcome(1, 100, 200.0)]);
        let json = serde_json::to_string(&report.summary()).unwrap();
        let back: ReportSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back.users_total, 1);
        assert_eq!(back.data_loss_percent, 0.0);
    }
}
