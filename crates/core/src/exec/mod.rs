//! The execution layer: *what* the engine evaluates, decoupled from
//! *how* it runs.
//!
//! MooD's hot path is a per-user search over LPPM candidates (singles,
//! then compositions, then recursive sub-trace searches — Algorithm 1).
//! Every candidate evaluation is independent: the per-variant RNG
//! derivation in [`crate::MoodEngine`] makes the work embarrassingly
//! parallel *and* order-free, so any scheduler produces bit-for-bit the
//! same protection as long as results are keyed by their submission
//! index. The [`Executor`] trait captures exactly that contract:
//!
//! * [`SequentialExecutor`] — runs tasks inline; zero overhead, the
//!   reference backend;
//! * [`ScopedPoolExecutor`] — static chunking over scoped threads; best
//!   when tasks are uniform;
//! * [`WorkStealingExecutor`] — per-worker deques with steal-half
//!   balancing; best for MooD's skewed workloads, where one orphan user
//!   can cost orders of magnitude more than a naturally protected one.
//!
//! [`protect_dataset`](crate::protect_dataset) layers the same
//! abstraction twice: across users, and (through the engine's own
//! executor) across the candidates of each user.

mod pool;
mod sequential;
mod stealing;

pub use pool::ScopedPoolExecutor;
pub use sequential::SequentialExecutor;
pub use stealing::WorkStealingExecutor;

use std::str::FromStr;
use std::sync::{Arc, Mutex};

use mood_lppm::Lppm;

/// An index-parallel execution backend.
///
/// The single primitive — [`Executor::for_each_index`] — runs a task
/// for every index in `0..n`, in any order, on any number of threads.
/// Callers that need results use [`map_indexed`], which stores each
/// task's output in its own slot so the outcome is independent of
/// scheduling.
///
/// Implementations must invoke the task **exactly once per index** and
/// must not return before every invocation has finished.
pub trait Executor: Send + Sync {
    /// Human-readable backend name (CLI/report labels).
    fn name(&self) -> &'static str;

    /// Upper bound on worker threads this backend will use.
    fn max_threads(&self) -> usize;

    /// Runs `task(i)` for every `i` in `0..n`, returning when all
    /// invocations are complete.
    fn for_each_index(&self, n: usize, task: &(dyn Fn(usize) + Sync));
}

/// Runs `f` over `0..n` on `executor` and collects the results in index
/// order — deterministic for any backend and thread count.
pub fn map_indexed<T, F>(executor: &dyn Executor, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    executor.for_each_index(n, &|i| {
        let value = f(i);
        let prev = slots[i].lock().expect("slot lock").replace(value);
        assert!(prev.is_none(), "executor ran index {i} twice");
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .expect("slot lock")
                .unwrap_or_else(|| panic!("executor never ran index {i}"))
        })
        .collect()
}

/// Which execution backend to build — the CLI- and config-facing name
/// of the execution layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutorKind {
    /// Run everything inline on the calling thread.
    Sequential,
    /// Scoped threads with static index chunking.
    ScopedPool,
    /// Scoped threads with work-stealing deques (the default for
    /// batch protection).
    WorkStealing,
}

impl ExecutorKind {
    /// Every kind, in presentation order.
    pub fn all() -> [ExecutorKind; 3] {
        [
            ExecutorKind::Sequential,
            ExecutorKind::ScopedPool,
            ExecutorKind::WorkStealing,
        ]
    }

    /// Builds the backend with the given thread budget (clamped to at
    /// least 1; the sequential backend ignores it).
    pub fn build(self, threads: usize) -> Arc<dyn Executor> {
        let threads = threads.max(1);
        match self {
            ExecutorKind::Sequential => Arc::new(SequentialExecutor),
            ExecutorKind::ScopedPool => Arc::new(ScopedPoolExecutor::new(threads)),
            ExecutorKind::WorkStealing => Arc::new(WorkStealingExecutor::new(threads)),
        }
    }
}

impl std::fmt::Display for ExecutorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ExecutorKind::Sequential => "sequential",
            ExecutorKind::ScopedPool => "pool",
            ExecutorKind::WorkStealing => "steal",
        };
        f.write_str(s)
    }
}

impl FromStr for ExecutorKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sequential" | "seq" => Ok(ExecutorKind::Sequential),
            "pool" | "scoped" | "scoped-pool" => Ok(ExecutorKind::ScopedPool),
            "steal" | "ws" | "work-stealing" => Ok(ExecutorKind::WorkStealing),
            other => Err(format!(
                "unknown executor '{other}' (expected sequential|pool|steal)"
            )),
        }
    }
}

/// One unit of engine work: apply variant `variant_idx` (an LPPM or a
/// composition chain) to a trace and judge the result.
///
/// The variant index doubles as the RNG-stream selector — see
/// [`crate::MoodEngine`]'s per-variant RNG derivation — which is what
/// makes candidate evaluation schedulable in any order.
#[derive(Clone, Copy)]
pub struct CandidateJob<'a> {
    /// Global variant index (singles first, then compositions).
    pub variant_idx: usize,
    /// The mechanism to apply.
    pub lppm: &'a dyn Lppm,
}

impl std::fmt::Debug for CandidateJob<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CandidateJob")
            .field("variant_idx", &self.variant_idx)
            .field("lppm", &self.lppm.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn backends() -> Vec<Arc<dyn Executor>> {
        vec![
            ExecutorKind::Sequential.build(1),
            ExecutorKind::ScopedPool.build(4),
            ExecutorKind::WorkStealing.build(4),
            ExecutorKind::WorkStealing.build(1),
            ExecutorKind::ScopedPool.build(16),
        ]
    }

    #[test]
    fn map_indexed_is_identical_across_backends() {
        let expected: Vec<u64> = (0..257u64).map(|i| i * i).collect();
        for exec in backends() {
            let got = map_indexed(exec.as_ref(), 257, |i| (i as u64) * (i as u64));
            assert_eq!(got, expected, "backend {}", exec.name());
        }
    }

    #[test]
    fn every_index_runs_exactly_once() {
        for exec in backends() {
            let counters: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
            exec.for_each_index(100, &|i| {
                counters[i].fetch_add(1, Ordering::SeqCst);
            });
            for (i, c) in counters.iter().enumerate() {
                assert_eq!(c.load(Ordering::SeqCst), 1, "index {i} on {}", exec.name());
            }
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        for exec in backends() {
            let empty: Vec<usize> = map_indexed(exec.as_ref(), 0, |i| i);
            assert!(empty.is_empty());
            let one = map_indexed(exec.as_ref(), 1, |i| i + 41);
            assert_eq!(one, vec![41]);
        }
    }

    #[test]
    fn skewed_workloads_complete() {
        // One task much slower than the rest: stealing must still cover
        // every index exactly once.
        let exec = ExecutorKind::WorkStealing.build(4);
        let got = map_indexed(exec.as_ref(), 64, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i
        });
        assert_eq!(got, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn kind_parses_and_displays() {
        for kind in ExecutorKind::all() {
            let parsed: ExecutorKind = kind.to_string().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert_eq!(
            "seq".parse::<ExecutorKind>().unwrap(),
            ExecutorKind::Sequential
        );
        assert_eq!(
            "work-stealing".parse::<ExecutorKind>().unwrap(),
            ExecutorKind::WorkStealing
        );
        assert!("quantum".parse::<ExecutorKind>().is_err());
    }

    #[test]
    fn builders_report_threads() {
        assert_eq!(ExecutorKind::Sequential.build(8).max_threads(), 1);
        assert_eq!(ExecutorKind::ScopedPool.build(3).max_threads(), 3);
        assert_eq!(ExecutorKind::WorkStealing.build(0).max_threads(), 1);
    }
}
