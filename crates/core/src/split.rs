use serde::{Deserialize, Serialize};

use mood_models::PoiExtractor;
use mood_trace::{Timestamp, Trace};

/// How the fine-grained stage splits a still-vulnerable trace
/// (Algorithm 1 line 28).
///
/// The paper uses [`SplitStrategy::Halving`] and names the other two as
/// future work (§6: "a mobility trace can be split by inter-POIs or
/// according to time gaps"); all three are implemented and compared in
/// the `exp_ablation` binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SplitStrategy {
    /// Cut at the temporal midpoint (the paper's `Split_in_half`).
    #[default]
    Halving,
    /// Cut at the largest recording gap (night pauses, phone-off
    /// periods); falls back to halving when the trace has no interior
    /// gap. Gap cuts separate naturally disjoint mobility episodes.
    LargestGap,
    /// Cut between two consecutive stays (inter-POI travel), choosing
    /// the boundary closest to the temporal midpoint; falls back to
    /// halving when fewer than two stays exist. POI-boundary cuts keep
    /// each dwell intact while separating the discriminative
    /// POI-transition patterns.
    InterPoi,
}

impl SplitStrategy {
    /// Splits `trace` into two non-empty halves according to the
    /// strategy, or `None` when no valid split exists (single-record or
    /// single-instant traces).
    pub fn split(&self, trace: &Trace) -> Option<(Trace, Trace)> {
        let cut = match self {
            SplitStrategy::Halving => None,
            SplitStrategy::LargestGap => largest_gap_cut(trace),
            SplitStrategy::InterPoi => inter_poi_cut(trace),
        };
        let (l, r) = match cut {
            Some(t) => trace.split_at_time(t),
            None => trace.split_in_half(),
        };
        match (l, r) {
            (Some(l), Some(r)) => Some((l, r)),
            _ => None,
        }
    }
}

impl std::fmt::Display for SplitStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SplitStrategy::Halving => "halving",
            SplitStrategy::LargestGap => "largest-gap",
            SplitStrategy::InterPoi => "inter-POI",
        };
        f.write_str(s)
    }
}

/// The instant just after the record preceding the largest interior gap;
/// `None` when every record shares one timestamp.
fn largest_gap_cut(trace: &Trace) -> Option<Timestamp> {
    let rs = trace.records();
    let mut best_gap = 0i64;
    let mut cut = None;
    for pair in rs.windows(2) {
        let gap = pair[1].time().since(pair[0].time()).as_secs();
        if gap > best_gap {
            best_gap = gap;
            cut = Some(pair[1].time());
        }
    }
    cut.filter(|_| best_gap > 0)
}

/// The stay boundary nearest the temporal midpoint: the instant between
/// the end of one stay and the start of the next.
fn inter_poi_cut(trace: &Trace) -> Option<Timestamp> {
    let stays = PoiExtractor::paper_default().extract_stays(trace);
    if stays.len() < 2 {
        return None;
    }
    let mid = Timestamp::midpoint(trace.start_time(), trace.end_time());
    stays
        .windows(2)
        .map(|pair| Timestamp::midpoint(pair[0].end, pair[1].start))
        .min_by_key(|t| t.since(mid).abs())
        // the cut must be interior to produce two non-empty halves
        .filter(|t| *t > trace.start_time() && *t <= trace.end_time())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mood_geo::GeoPoint;
    use mood_trace::{Record, TimeDelta, UserId};

    fn rec(lat: f64, lng: f64, t: i64) -> Record {
        Record::new(GeoPoint::new(lat, lng).unwrap(), Timestamp::from_unix(t))
    }

    /// Morning block, 6 h gap, evening block.
    fn gapped_trace() -> Trace {
        let mut records: Vec<Record> = (0..12).map(|i| rec(46.2, 6.1, i * 600)).collect();
        let evening = 12 * 600 + 6 * 3600;
        records.extend((0..12).map(|i| rec(46.25, 6.18, evening + i * 600)));
        Trace::new(UserId::new(1), records).unwrap()
    }

    #[test]
    fn halving_balances_record_counts() {
        let t = gapped_trace();
        let (l, r) = SplitStrategy::Halving.split(&t).unwrap();
        assert_eq!(l.len() + r.len(), t.len());
        assert!(l.end_time() < r.start_time());
    }

    #[test]
    fn largest_gap_cuts_at_the_gap() {
        let t = gapped_trace();
        let (l, r) = SplitStrategy::LargestGap.split(&t).unwrap();
        assert_eq!(l.len(), 12, "morning block intact");
        assert_eq!(r.len(), 12, "evening block intact");
        // the gap between halves is the 6 h pause
        assert!(r.start_time().since(l.end_time()) >= TimeDelta::from_hours(5));
    }

    #[test]
    fn inter_poi_separates_stays() {
        let t = gapped_trace();
        let (l, r) = SplitStrategy::InterPoi.split(&t).unwrap();
        // each half contains one dwell place
        let spread = |tr: &Trace| {
            let bb = tr.bounding_box();
            bb.height_m().max(bb.width_m())
        };
        assert!(spread(&l) < 500.0, "left half spans {} m", spread(&l));
        assert!(spread(&r) < 500.0, "right half spans {} m", spread(&r));
    }

    #[test]
    fn gap_strategy_falls_back_on_uniform_trace() {
        let records: Vec<Record> = (0..10).map(|i| rec(46.2, 6.1, i * 600)).collect();
        let t = Trace::new(UserId::new(1), records).unwrap();
        // uniform spacing: every gap equal, strategy still splits
        let (l, r) = SplitStrategy::LargestGap.split(&t).unwrap();
        assert_eq!(l.len() + r.len(), 10);
    }

    #[test]
    fn inter_poi_falls_back_without_stays() {
        // constantly moving: no stays -> halving fallback
        let records: Vec<Record> = (0..20)
            .map(|i| rec(46.0 + i as f64 * 0.01, 6.0, i * 600))
            .collect();
        let t = Trace::new(UserId::new(1), records).unwrap();
        let (l, r) = SplitStrategy::InterPoi.split(&t).unwrap();
        assert_eq!(l.len() + r.len(), 20);
    }

    #[test]
    fn single_record_is_unsplittable() {
        let t = Trace::new(UserId::new(1), vec![rec(46.2, 6.1, 0)]).unwrap();
        for strategy in [
            SplitStrategy::Halving,
            SplitStrategy::LargestGap,
            SplitStrategy::InterPoi,
        ] {
            assert!(strategy.split(&t).is_none(), "{strategy}");
        }
    }

    #[test]
    fn splits_preserve_all_records() {
        let t = gapped_trace();
        for strategy in [
            SplitStrategy::Halving,
            SplitStrategy::LargestGap,
            SplitStrategy::InterPoi,
        ] {
            let (l, r) = strategy.split(&t).unwrap();
            assert_eq!(l.len() + r.len(), t.len(), "{strategy}");
            assert_eq!(l.user(), t.user());
            assert_eq!(r.user(), t.user());
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(SplitStrategy::Halving.to_string(), "halving");
        assert_eq!(SplitStrategy::LargestGap.to_string(), "largest-gap");
        assert_eq!(SplitStrategy::InterPoi.to_string(), "inter-POI");
    }

    #[test]
    fn default_is_the_papers_halving() {
        assert_eq!(SplitStrategy::default(), SplitStrategy::Halving);
    }
}
