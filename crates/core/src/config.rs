use serde::{Deserialize, Serialize};

use mood_trace::TimeDelta;

use crate::SplitStrategy;

/// Configuration of the MooD engine (the paper's parameters in §3.4 and
/// §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MoodConfig {
    /// Recursion floor δ: sub-traces shorter than this are erased instead
    /// of split further (4 h in the paper).
    pub delta: TimeDelta,
    /// Length of the initial fine-grained windows. The paper splits
    /// still-vulnerable traces into 24 h sub-traces ("to simulate the
    /// scenario of a crowdsensing application where users send their
    /// data daily", §4.2) before the recursive halving starts. `None`
    /// starts the recursive halving directly on the whole trace
    /// (Algorithm 1 verbatim).
    pub initial_window: Option<TimeDelta>,
    /// Maximum composition length explored by the Multi-LPPM Composition
    /// Search; `usize::MAX` means "up to the number of base LPPMs" (the
    /// paper explores the full space C).
    pub max_composition_len: usize,
    /// How still-vulnerable sub-traces are split (the paper halves by
    /// time; gap and inter-POI splitting are its §6 future work).
    pub split_strategy: SplitStrategy,
    /// Seed from which every LPPM application derives its randomness;
    /// fixed seed = bit-for-bit reproducible protection.
    pub seed: u64,
}

impl MoodConfig {
    /// The paper's configuration: δ = 4 h, 24 h initial windows, full
    /// composition space.
    pub fn paper_default() -> Self {
        Self {
            delta: TimeDelta::from_hours(4),
            initial_window: Some(TimeDelta::from_hours(24)),
            max_composition_len: usize::MAX,
            split_strategy: SplitStrategy::Halving,
            seed: 0x4d6f_6f44,
        }
    }

    /// Validates the configuration, reporting the first problem found.
    ///
    /// # Errors
    ///
    /// Returns a message naming the bad parameter when δ or the initial
    /// window is non-positive, or when `max_composition_len` is zero.
    pub fn check(&self) -> Result<(), String> {
        if self.delta.as_secs() <= 0 {
            return Err("delta must be positive".to_string());
        }
        if let Some(w) = self.initial_window {
            if w.as_secs() <= 0 {
                return Err("initial window must be positive".to_string());
            }
        }
        if self.max_composition_len < 1 {
            return Err("composition length must be at least 1".to_string());
        }
        Ok(())
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics when [`MoodConfig::check`] fails.
    pub fn validate(&self) {
        if let Err(message) = self.check() {
            panic!("{message}");
        }
    }
}

impl Default for MoodConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_4_2() {
        let c = MoodConfig::paper_default();
        assert_eq!(c.delta, TimeDelta::from_hours(4));
        assert_eq!(c.initial_window, Some(TimeDelta::from_hours(24)));
        c.validate();
    }

    #[test]
    #[should_panic(expected = "delta must be positive")]
    fn rejects_zero_delta() {
        let mut c = MoodConfig::paper_default();
        c.delta = TimeDelta::from_secs(0);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "initial window")]
    fn rejects_zero_window() {
        let mut c = MoodConfig::paper_default();
        c.initial_window = Some(TimeDelta::from_secs(0));
        c.validate();
    }

    #[test]
    fn default_is_paper_default() {
        assert_eq!(MoodConfig::default(), MoodConfig::paper_default());
    }

    #[test]
    fn serde_roundtrip() {
        let c = MoodConfig::paper_default();
        let json = serde_json::to_string(&c).unwrap();
        let back: MoodConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
