use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use mood_attacks::AttackSuite;
use mood_lppm::Lppm;
use mood_metrics::spatio_temporal_distortion;
use mood_trace::Trace;

use crate::ProtectedTrace;

/// The HybridLPPM baseline (Maouche et al. 2017, the paper's \[22\], with
/// the paper's §4.1.2 variation): a *user-centric single-LPPM* selector.
///
/// Mechanisms are ordered by the data distortion they cause; for each
/// user the first mechanism in the order that defeats **all** attacks is
/// selected. Users no single mechanism protects stay unprotected — those
/// are exactly the orphan users MooD is built for.
///
/// The paper's order is `HMC → Geo-I → TRL` (least to most degrading in
/// their measurements).
///
/// # Examples
///
/// ```
/// use mood_core::{HybridLppm, MoodEngine};
/// use mood_synth::presets;
/// use mood_trace::TimeDelta;
///
/// let ds = presets::privamov_like().scaled(0.15).generate();
/// let (background, test) = ds.split_chronological(TimeDelta::from_days(15));
/// let engine = MoodEngine::paper_default(&background);
/// let hybrid = HybridLppm::paper_default(&engine);
/// let trace = test.iter().next().unwrap();
/// let _maybe_protected = hybrid.protect_user(trace, engine.suite());
/// ```
pub struct HybridLppm {
    ordered: Vec<Arc<dyn Lppm>>,
    seed: u64,
}

impl HybridLppm {
    /// Creates a HybridLPPM trying `ordered` mechanisms first to last.
    ///
    /// # Panics
    ///
    /// Panics when `ordered` is empty.
    pub fn new(ordered: Vec<Arc<dyn Lppm>>, seed: u64) -> Self {
        assert!(!ordered.is_empty(), "hybrid needs at least one LPPM");
        Self { ordered, seed }
    }

    /// The paper's configuration, reusing the engine's LPPM instances in
    /// the order HMC → Geo-I → TRL. The engine's base set must be the
    /// paper's `[Geo-I, TRL, HMC]` (as built by
    /// [`crate::MoodEngine::paper_default`]).
    pub fn paper_default(engine: &crate::MoodEngine) -> Self {
        let base = engine.lppms();
        assert_eq!(base.len(), 3, "paper hybrid expects the 3-LPPM base set");
        let ordered = vec![base[2].clone(), base[0].clone(), base[1].clone()];
        Self::new(ordered, engine.config().seed)
    }

    /// The mechanisms in preference order.
    pub fn order(&self) -> &[Arc<dyn Lppm>] {
        &self.ordered
    }

    /// Protects one user: the first mechanism in the order whose output
    /// defeats every attack in `suite` wins. Returns `None` for orphan
    /// users (no single mechanism works).
    pub fn protect_user(&self, trace: &Trace, suite: &AttackSuite) -> Option<ProtectedTrace> {
        for (i, lppm) in self.ordered.iter().enumerate() {
            let mut h = self.seed ^ trace.user().as_u64().wrapping_mul(0x9e37_79b9_7f4a_7c15);
            h = h.wrapping_add(i as u64);
            let mut rng = StdRng::seed_from_u64(h);
            let candidate = lppm.protect(trace, &mut rng);
            if suite.protects(&candidate, trace.user()) {
                let distortion = spatio_temporal_distortion(trace, &candidate);
                return Some(ProtectedTrace {
                    trace: candidate,
                    lppm: lppm.name().to_string(),
                    distortion_m: distortion,
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MoodEngine;
    use mood_trace::TimeDelta;

    fn mini_world() -> (mood_trace::Dataset, mood_trace::Dataset) {
        let ds = mood_synth::presets::privamov_like().scaled(0.25).generate();
        ds.split_chronological(TimeDelta::from_days(15))
    }

    #[test]
    fn paper_order_is_hmc_geoi_trl() {
        let (bg, _) = mini_world();
        let engine = MoodEngine::paper_default(&bg);
        let hybrid = HybridLppm::paper_default(&engine);
        let names: Vec<&str> = hybrid.order().iter().map(|l| l.name()).collect();
        assert_eq!(names, vec!["HMC", "Geo-I", "TRL"]);
    }

    #[test]
    fn protected_output_resists_suite() {
        let (bg, test) = mini_world();
        let engine = MoodEngine::paper_default(&bg);
        let hybrid = HybridLppm::paper_default(&engine);
        for trace in test.iter().take(6) {
            if let Some(p) = hybrid.protect_user(trace, engine.suite()) {
                assert!(engine.suite().protects(&p.trace, trace.user()));
                assert!(["HMC", "Geo-I", "TRL"].contains(&p.lppm.as_str()));
            }
        }
    }

    #[test]
    fn hybrid_never_beats_mood_at_dataset_level() {
        // Per-user the claim can flip on individual noise draws (the two
        // systems derive different RNG streams), but over a dataset
        // MooD's superset search must leave at most as many users
        // unprotected as the single-LPPM hybrid.
        let (bg, test) = mini_world();
        let engine = MoodEngine::paper_default(&bg);
        let hybrid = HybridLppm::paper_default(&engine);
        let mut hybrid_unprotected = 0;
        let mut mood_unprotected = 0;
        for trace in test.iter() {
            if hybrid.protect_user(trace, engine.suite()).is_none() {
                hybrid_unprotected += 1;
            }
            if engine.search_whole(trace).is_none() {
                mood_unprotected += 1;
            }
        }
        assert!(
            mood_unprotected <= hybrid_unprotected,
            "MooD left {mood_unprotected} users, hybrid {hybrid_unprotected}"
        );
    }

    #[test]
    fn deterministic() {
        let (bg, test) = mini_world();
        let engine = MoodEngine::paper_default(&bg);
        let hybrid = HybridLppm::paper_default(&engine);
        let trace = test.iter().next().unwrap();
        assert_eq!(
            hybrid.protect_user(trace, engine.suite()),
            hybrid.protect_user(trace, engine.suite())
        );
    }

    #[test]
    #[should_panic(expected = "at least one LPPM")]
    fn rejects_empty_order() {
        HybridLppm::new(vec![], 0);
    }
}
