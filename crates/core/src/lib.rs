//! The MooD engine — *MObility Data Privacy as Orphan Disease*
//! (Khalfoun et al., Middleware 2019).
//!
//! MooD is a user-centric, fine-grained, multi-LPPM protection system:
//! for each user it searches for a protecting mechanism among single
//! LPPMs, then among all ordered LPPM compositions, and finally falls
//! back to fine-grained protection — splitting the trace and protecting
//! each sub-trace independently under a fresh pseudonym (Algorithm 1).
//! Its goal is to cure *orphan users* — users no single LPPM can protect
//! — and thereby reduce the data loss of a published dataset to nearly
//! zero.
//!
//! # Architecture (paper Fig. 5)
//!
//! * [`MoodEngine`] — the three components of the paper: Multi-LPPM
//!   Composition Search, Fine-Grained Data Protection, Best LPPM
//!   Selection;
//! * [`HybridLppm`] — the strongest prior baseline (Maouche et al. 2017):
//!   per-user selection of a single LPPM in a fixed distortion order;
//! * [`exec`] — the execution layer (the `mood-exec` crate re-exported):
//!   pluggable backends (sequential, scoped pool, work-stealing, and a
//!   persistent parked-worker pool) running candidate evaluations and
//!   per-user protection with bit-for-bit identical results, plus
//!   per-worker scratch arenas for allocation-free hot loops;
//! * [`protect_dataset`] — the parallel dataset pipeline, producing a
//!   [`ProtectionReport`] and a publishable pseudonymized dataset
//!   ([`protect_stream`] yields per-user results as they complete);
//! * [`UserClass`] — the orphan-disease taxonomy of §3.1 (naturally
//!   protected / single-LPPM / multi-LPPM / fine-grained / unprotectable).
//!
//! # Examples
//!
//! ```
//! use mood_core::{MoodConfig, MoodEngine};
//! use mood_synth::presets;
//! use mood_trace::TimeDelta;
//!
//! // a miniature end-to-end run
//! let ds = presets::privamov_like().scaled(0.15).generate();
//! let (background, test) = ds.split_chronological(TimeDelta::from_days(15));
//! let engine = MoodEngine::paper_default(&background);
//! let report = mood_core::protect_dataset(&engine, &test, 1);
//! // MooD's promise: almost no data loss
//! assert!(report.data_loss.ratio() < 0.2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod engine;
pub mod exec;
mod hybrid;
mod outcome;
mod pipeline;
mod report;
mod split;

pub use config::MoodConfig;
pub use engine::{EngineBuilder, EngineError, MoodEngine, ENGINE_STAGES};
pub use exec::{
    CandidateJob, Executor, ExecutorKind, PersistentPoolExecutor, ScopedPoolExecutor,
    SequentialExecutor, WorkStealingExecutor,
};
pub use hybrid::HybridLppm;
pub use mood_obs as obs;
pub use outcome::{FineGrainedStats, ProtectedTrace, ProtectionOutcome, UserClass, UserProtection};
pub use pipeline::{
    protect_dataset, protect_dataset_with, protect_store_stream, protect_store_with,
    protect_stream, publish, StreamError,
};
pub use report::{DistortionEntry, ProtectionReport};
pub use split::SplitStrategy;
