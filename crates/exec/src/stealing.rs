use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use super::Executor;

/// Scoped threads with per-worker deques and steal-half balancing.
///
/// Each worker starts with a contiguous chunk of indices in its own
/// deque and pops work from the front. A worker that runs dry scans its
/// peers and steals the back half of the fullest deque it finds; the
/// surplus goes into its own deque. A worker exits only once a full
/// scan finds every deque empty **and** no steal is in transit (a
/// stolen chunk briefly lives in the thief's stack between leaving the
/// victim and landing in the thief's deque; the in-transit counter
/// keeps peers from declaring the pool dry during that window).
///
/// MooD's per-user cost is heavily skewed — an orphan user triggers a
/// recursive fine-grained search worth hundreds of candidate
/// evaluations, a naturally protected user just one suite check — so
/// stealing is what keeps all cores busy on real datasets. Threads are
/// spawned per call; [`super::PersistentPoolExecutor`] amortizes that
/// cost across calls.
#[derive(Debug, Clone, Copy)]
pub struct WorkStealingExecutor {
    threads: usize,
}

impl WorkStealingExecutor {
    /// An executor using up to `threads` workers (at least 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }
}

impl Executor for WorkStealingExecutor {
    fn name(&self) -> &'static str {
        "steal"
    }

    fn max_threads(&self) -> usize {
        self.threads
    }

    fn for_each_index_slot(&self, n: usize, task: &(dyn Fn(usize, usize) + Sync)) {
        let workers = self.threads.min(n);
        if workers <= 1 {
            for i in 0..n {
                task(i, 0);
            }
            return;
        }

        // One deque per worker, pre-filled with contiguous chunks so
        // neighboring indices (often neighboring users) start on the
        // same worker and stealing moves large, cache-friendly blocks.
        let base = n / workers;
        let rest = n % workers;
        let mut start = 0;
        let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| {
                let len = base + usize::from(w < rest);
                let chunk: VecDeque<usize> = (start..start + len).collect();
                start += len;
                Mutex::new(chunk)
            })
            .collect();
        // Steals currently holding work outside any deque.
        let in_transit = AtomicUsize::new(0);

        std::thread::scope(|scope| {
            for w in 0..workers {
                let deques = &deques;
                let in_transit = &in_transit;
                scope.spawn(move || loop {
                    // Fast path: own deque.
                    let own = deques[w].lock().expect("deque lock").pop_front();
                    if let Some(i) = own {
                        task(i, w);
                        continue;
                    }
                    // Steal: take the back half of the fullest peer.
                    // The counter is raised before the victim is
                    // drained and dropped only after the surplus is
                    // back in a deque, so scanning peers never miss
                    // work that is mid-flight.
                    in_transit.fetch_add(1, Ordering::SeqCst);
                    let mut stolen: Option<VecDeque<usize>> = None;
                    let victim = (0..deques.len())
                        .filter(|&v| v != w)
                        .max_by_key(|&v| deques[v].lock().expect("deque lock").len());
                    if let Some(v) = victim {
                        let mut vq = deques[v].lock().expect("deque lock");
                        let len = vq.len();
                        if len > 0 {
                            stolen = Some(vq.split_off(len - len.div_ceil(2)));
                        }
                    }
                    let first = match &mut stolen {
                        Some(chunk) => {
                            let first = chunk.pop_front();
                            if !chunk.is_empty() {
                                deques[w]
                                    .lock()
                                    .expect("deque lock")
                                    .extend(std::mem::take(chunk));
                            }
                            first
                        }
                        None => None,
                    };
                    in_transit.fetch_sub(1, Ordering::SeqCst);
                    match first {
                        Some(i) => task(i, w),
                        None => {
                            // Every deque was empty at scan time. If a
                            // peer holds a chunk mid-steal, wait for it
                            // to land and rescan; otherwise no
                            // claimable work remains anywhere (indices
                            // being executed are owned by their
                            // claimants and are never re-queued).
                            if in_transit.load(Ordering::SeqCst) == 0 {
                                return;
                            }
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
    }
}
