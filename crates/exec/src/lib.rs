//! The execution layer: *what* gets evaluated, decoupled from *how* it
//! runs.
//!
//! MooD's hot paths are index-parallel: a per-user search over LPPM
//! candidates (Algorithm 1), a per-user fan-out in the batch pipeline,
//! and a per-trace fan-out in attack evaluation. Every unit of work is
//! independent, and the per-variant RNG derivation upstream makes the
//! work order-free: any scheduler produces bit-for-bit the same result
//! as long as outputs are keyed by their submission index. The
//! [`Executor`] trait captures exactly that contract:
//!
//! * [`SequentialExecutor`] — runs tasks inline; zero overhead, the
//!   reference backend;
//! * [`ScopedPoolExecutor`] — static chunking over scoped threads; best
//!   when tasks are uniform;
//! * [`WorkStealingExecutor`] — per-worker deques with steal-half
//!   balancing; best for skewed workloads, where one orphan user can
//!   cost orders of magnitude more than a naturally protected one;
//! * [`PersistentPoolExecutor`] — a long-lived pool of parked workers
//!   fed through a shared injector, created once and reused by every
//!   subsequent call; amortizes thread spawn across a whole run, which
//!   is what online, many-small-requests deployments need.
//!
//! # Worker slots and scratch reuse
//!
//! Beyond plain [`Executor::for_each_index`], every backend reports a
//! **worker slot** for each task invocation via
//! [`Executor::for_each_index_slot`]: a small integer `< max_threads()`
//! identifying the worker running the task, exclusive to one thread at
//! any instant. [`for_each_index_with`] and [`map_indexed_with`] build
//! per-worker **scratch arenas** on top of that guarantee: one lazily
//! initialized scratch value per slot, handed `&mut` to every task the
//! slot runs — so hot loops can reuse buffers and RNG state instead of
//! allocating per task, without any synchronization on the hot path.
//!
//! # Determinism contract
//!
//! Implementations must invoke the task **exactly once per index** and
//! must not return before every invocation has finished. Combined with
//! index-keyed result collection ([`map_indexed`]), this makes every
//! backend × thread count byte-identical to the sequential reference —
//! the `executor_determinism` integration test is the gate.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod persistent;
mod pool;
mod sequential;
pub mod service;
mod stealing;

pub use persistent::PersistentPoolExecutor;
pub use pool::ScopedPoolExecutor;
pub use sequential::SequentialExecutor;
pub use service::{QueueStats, ServicePool, SubmitError, SubmitGate};
pub use stealing::WorkStealingExecutor;

use std::str::FromStr;
use std::sync::{Arc, Mutex};

/// An index-parallel execution backend.
///
/// The core primitive — [`Executor::for_each_index_slot`] — runs a task
/// for every index in `0..n`, in any order, on any number of threads,
/// reporting for each invocation the **worker slot** executing it.
/// Callers that need results use [`map_indexed`], which stores each
/// task's output in its own slot so the outcome is independent of
/// scheduling; callers with reusable per-worker state use
/// [`for_each_index_with`] / [`map_indexed_with`].
///
/// Implementations must invoke the task **exactly once per index** and
/// must not return before every invocation has finished.
pub trait Executor: Send + Sync {
    /// Human-readable backend name (CLI/report labels).
    fn name(&self) -> &'static str;

    /// Upper bound on worker threads this backend will use. Worker
    /// slots passed to [`Executor::for_each_index_slot`] are always
    /// strictly below this bound.
    fn max_threads(&self) -> usize;

    /// Runs `task(i, slot)` for every `i` in `0..n`, returning when all
    /// invocations are complete. `slot < max_threads()` identifies the
    /// worker executing the invocation; at any instant a slot is used
    /// by at most one thread, so slot-indexed state needs no locking
    /// beyond what lazy initialization requires.
    fn for_each_index_slot(&self, n: usize, task: &(dyn Fn(usize, usize) + Sync));

    /// Runs `task(i)` for every `i` in `0..n`, returning when all
    /// invocations are complete.
    fn for_each_index(&self, n: usize, task: &(dyn Fn(usize) + Sync)) {
        self.for_each_index_slot(n, &|i, _slot| task(i));
    }
}

/// Runs `f` over `0..n` on `executor` and collects the results in index
/// order — deterministic for any backend and thread count.
pub fn map_indexed<T, F>(executor: &dyn Executor, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    map_indexed_with(executor, n, || (), |(), i| f(i))
}

/// Runs `task(&mut scratch, i)` over `0..n` on `executor`, with one
/// scratch value per worker slot, lazily created by `init` the first
/// time the slot runs a task. Returns the scratch values that were
/// actually created (in slot order), so callers can merge per-worker
/// accumulators — deterministically, if they key accumulated entries by
/// submission index.
pub fn for_each_index_with<S, I, T>(executor: &dyn Executor, n: usize, init: I, task: T) -> Vec<S>
where
    S: Send,
    I: Fn() -> S + Sync,
    T: Fn(&mut S, usize) + Sync,
{
    let slots: Vec<Mutex<Option<S>>> = (0..executor.max_threads().max(1))
        .map(|_| Mutex::new(None))
        .collect();
    executor.for_each_index_slot(n, &|i, slot| {
        // Slots are exclusive to one worker at a time, so this lock is
        // uncontended; it only exists to make lazy init and the final
        // collection safe.
        let mut guard = slots[slot].lock().expect("scratch slot lock");
        let scratch = guard.get_or_insert_with(&init);
        task(scratch, i);
    });
    slots
        .into_iter()
        .filter_map(|slot| slot.into_inner().expect("scratch slot lock"))
        .collect()
}

/// [`map_indexed`] with a per-worker scratch value: runs
/// `f(&mut scratch, i)` over `0..n` and collects the results in index
/// order. The scratch values are dropped when the call returns (their
/// `Drop` impls can recycle buffers into a caller-owned pool).
pub fn map_indexed_with<S, T, I, F>(executor: &dyn Executor, n: usize, init: I, f: F) -> Vec<T>
where
    S: Send,
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let out: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    for_each_index_with(executor, n, init, |scratch, i| {
        let value = f(scratch, i);
        let prev = out[i].lock().expect("result slot lock").replace(value);
        assert!(prev.is_none(), "executor ran index {i} twice");
    });
    out.into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .expect("result slot lock")
                .unwrap_or_else(|| panic!("executor never ran index {i}"))
        })
        .collect()
}

/// Which execution backend to build — the CLI- and config-facing name
/// of the execution layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutorKind {
    /// Run everything inline on the calling thread.
    Sequential,
    /// Scoped threads with static index chunking, spawned per call.
    ScopedPool,
    /// Scoped threads with work-stealing deques, spawned per call.
    WorkStealing,
    /// A long-lived pool of parked workers fed through a shared
    /// injector; threads are spawned once and reused by every call
    /// (the default for batch protection and the CLI).
    Persistent,
}

impl ExecutorKind {
    /// Every kind, in presentation order.
    pub fn all() -> [ExecutorKind; 4] {
        [
            ExecutorKind::Sequential,
            ExecutorKind::ScopedPool,
            ExecutorKind::WorkStealing,
            ExecutorKind::Persistent,
        ]
    }

    /// Builds the backend with the given thread budget (clamped to at
    /// least 1; the sequential backend ignores it). The persistent
    /// backend spawns its workers here — build it once per run, not
    /// once per call.
    pub fn build(self, threads: usize) -> Arc<dyn Executor> {
        let threads = threads.max(1);
        match self {
            ExecutorKind::Sequential => Arc::new(SequentialExecutor),
            ExecutorKind::ScopedPool => Arc::new(ScopedPoolExecutor::new(threads)),
            ExecutorKind::WorkStealing => Arc::new(WorkStealingExecutor::new(threads)),
            ExecutorKind::Persistent => Arc::new(PersistentPoolExecutor::new(threads)),
        }
    }
}

impl std::fmt::Display for ExecutorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ExecutorKind::Sequential => "sequential",
            ExecutorKind::ScopedPool => "pool",
            ExecutorKind::WorkStealing => "steal",
            ExecutorKind::Persistent => "persistent",
        };
        f.write_str(s)
    }
}

impl FromStr for ExecutorKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sequential" | "seq" => Ok(ExecutorKind::Sequential),
            "pool" | "scoped" | "scoped-pool" => Ok(ExecutorKind::ScopedPool),
            "steal" | "ws" | "work-stealing" => Ok(ExecutorKind::WorkStealing),
            "persistent" | "pers" | "persistent-pool" => Ok(ExecutorKind::Persistent),
            other => Err(format!(
                "unknown executor '{other}' (expected sequential|pool|steal|persistent)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn backends() -> Vec<Arc<dyn Executor>> {
        vec![
            ExecutorKind::Sequential.build(1),
            ExecutorKind::ScopedPool.build(4),
            ExecutorKind::WorkStealing.build(4),
            ExecutorKind::WorkStealing.build(1),
            ExecutorKind::ScopedPool.build(16),
            ExecutorKind::Persistent.build(4),
            ExecutorKind::Persistent.build(1),
        ]
    }

    #[test]
    fn map_indexed_is_identical_across_backends() {
        let expected: Vec<u64> = (0..257u64).map(|i| i * i).collect();
        for exec in backends() {
            let got = map_indexed(exec.as_ref(), 257, |i| (i as u64) * (i as u64));
            assert_eq!(got, expected, "backend {}", exec.name());
        }
    }

    #[test]
    fn every_index_runs_exactly_once() {
        for exec in backends() {
            let counters: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
            exec.for_each_index(100, &|i| {
                counters[i].fetch_add(1, Ordering::SeqCst);
            });
            for (i, c) in counters.iter().enumerate() {
                assert_eq!(c.load(Ordering::SeqCst), 1, "index {i} on {}", exec.name());
            }
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        for exec in backends() {
            let empty: Vec<usize> = map_indexed(exec.as_ref(), 0, |i| i);
            assert!(empty.is_empty());
            let one = map_indexed(exec.as_ref(), 1, |i| i + 41);
            assert_eq!(one, vec![41]);
        }
    }

    #[test]
    fn slots_stay_below_max_threads() {
        for exec in backends() {
            let bound = exec.max_threads();
            let seen = AtomicUsize::new(0);
            exec.for_each_index_slot(200, &|_, slot| {
                assert!(slot < bound, "slot {slot} >= {bound} on {}", exec.name());
                seen.fetch_max(slot + 1, Ordering::SeqCst);
            });
            assert!(seen.load(Ordering::SeqCst) >= 1);
        }
    }

    #[test]
    fn scratch_reused_within_a_call() {
        for exec in backends() {
            let inits = AtomicUsize::new(0);
            let tasks = AtomicUsize::new(0);
            let scratches = for_each_index_with(
                exec.as_ref(),
                500,
                || {
                    inits.fetch_add(1, Ordering::SeqCst);
                    0usize
                },
                |scratch, _i| {
                    *scratch += 1;
                    tasks.fetch_add(1, Ordering::SeqCst);
                },
            );
            assert_eq!(tasks.load(Ordering::SeqCst), 500, "{}", exec.name());
            // One scratch per slot that ran tasks — never one per task.
            assert_eq!(inits.load(Ordering::SeqCst), scratches.len());
            assert!(scratches.len() <= exec.max_threads(), "{}", exec.name());
            assert_eq!(scratches.iter().sum::<usize>(), 500, "{}", exec.name());
        }
    }

    #[test]
    fn map_indexed_with_matches_map_indexed() {
        for exec in backends() {
            let plain = map_indexed(exec.as_ref(), 100, |i| i * 3);
            let scratched = map_indexed_with(exec.as_ref(), 100, || (), |(), i| i * 3);
            assert_eq!(plain, scratched, "{}", exec.name());
        }
    }

    #[test]
    fn skewed_workloads_complete() {
        // One task much slower than the rest: dynamic backends must
        // still cover every index exactly once.
        for exec in [
            ExecutorKind::WorkStealing.build(4),
            ExecutorKind::Persistent.build(4),
        ] {
            let got = map_indexed(exec.as_ref(), 64, |i| {
                if i == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                i
            });
            assert_eq!(got, (0..64).collect::<Vec<_>>(), "{}", exec.name());
        }
    }

    #[test]
    fn kind_parses_and_displays() {
        for kind in ExecutorKind::all() {
            let parsed: ExecutorKind = kind.to_string().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert_eq!(
            "seq".parse::<ExecutorKind>().unwrap(),
            ExecutorKind::Sequential
        );
        assert_eq!(
            "work-stealing".parse::<ExecutorKind>().unwrap(),
            ExecutorKind::WorkStealing
        );
        assert_eq!(
            "persistent".parse::<ExecutorKind>().unwrap(),
            ExecutorKind::Persistent
        );
        assert!("quantum".parse::<ExecutorKind>().is_err());
    }

    #[test]
    fn builders_report_threads() {
        assert_eq!(ExecutorKind::Sequential.build(8).max_threads(), 1);
        assert_eq!(ExecutorKind::ScopedPool.build(3).max_threads(), 3);
        assert_eq!(ExecutorKind::WorkStealing.build(0).max_threads(), 1);
        assert_eq!(ExecutorKind::Persistent.build(3).max_threads(), 3);
    }
}
