//! A long-lived pool of parked worker threads fed through a shared
//! injector.
//!
//! The scoped backends spawn and join OS threads inside **every**
//! `for_each_index` call. That is fine for one big batch, but MooD's
//! deployment regime is the opposite: many small requests (one user,
//! one sub-trace, a handful of candidates each), where per-call thread
//! spawn dominates the work itself. This backend creates its workers
//! once, parks them on a condvar, and feeds every subsequent call
//! through a shared chunked injector — idle workers pull (steal) the
//! next chunk of indices as they run dry, so skewed workloads balance
//! like the work-stealing backend without per-call setup.

#[allow(unsafe_code)]
mod task_ref {
    //! The one piece of `unsafe` in the execution layer, isolated and
    //! small: erasing the lifetime of a borrowed task so parked worker
    //! threads (which are `'static`) can run it.

    /// A lifetime-erased reference to a caller's task.
    ///
    /// # Soundness
    ///
    /// `for_each_index_slot` blocks until `finished == n`, and
    /// `finished` only reaches `n` after every claimed index's task
    /// invocation has returned. Workers call the task only for indices
    /// claimed from the injector (`next < n`), and claiming stops once
    /// the injector is exhausted — so no worker can dereference the
    /// pointer after the submitting call returns, which is the whole
    /// region the original borrow was valid for. The `Batch` holding a
    /// `TaskRef` may outlive the call (workers keep `Arc<Batch>`
    /// clones), but after exhaustion they only touch the batch's own
    /// atomics, never the pointer.
    #[derive(Clone, Copy)]
    pub(super) struct TaskRef(*const (dyn Fn(usize, usize) + Sync + 'static));

    // SAFETY: the pointee is `Sync` (shared access from any thread is
    // fine) and the pointer itself is only dereferenced while the
    // submitting call keeps the pointee alive (see above).
    unsafe impl Send for TaskRef {}
    unsafe impl Sync for TaskRef {}

    impl TaskRef {
        /// Erases the borrow. The caller must keep the referent alive —
        /// and the submitting call does, by blocking until the batch is
        /// fully finished — for as long as `call` may run.
        pub(super) fn erase(task: &(dyn Fn(usize, usize) + Sync)) -> Self {
            let short: *const (dyn Fn(usize, usize) + Sync) = std::ptr::from_ref(task);
            // SAFETY: pure lifetime erasure on a raw pointer — layout is
            // identical; validity is argued at the type level above.
            Self(unsafe {
                std::mem::transmute::<
                    *const (dyn Fn(usize, usize) + Sync),
                    *const (dyn Fn(usize, usize) + Sync + 'static),
                >(short)
            })
        }

        /// Runs the task. Only called for injector-claimed indices of a
        /// batch whose submitter is still blocked (see type docs).
        pub(super) fn call(&self, i: usize, slot: usize) {
            // SAFETY: see the type-level soundness argument.
            (unsafe { &*self.0 })(i, slot)
        }
    }
}

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use task_ref::TaskRef;

use super::Executor;

thread_local! {
    /// Set once per pool worker: (address of the owning pool's shared
    /// state, worker slot). Lets a nested submission from inside a task
    /// detect "this is my own pool" and run inline instead of
    /// deadlocking on itself.
    static WORKER_CONTEXT: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

/// One submitted `for_each_index_slot` call.
struct Batch {
    task: TaskRef,
    n: usize,
    /// Indices are handed out in chunks of this size.
    chunk: usize,
    /// The shared injector cursor: workers claim `[next, next + chunk)`.
    next: AtomicUsize,
    /// Invocations that have returned; the batch is complete at `n`.
    finished: AtomicUsize,
    /// The first panic payload raised by an invocation; the submitter
    /// resumes unwinding with it, matching the scoped backends (where
    /// `std::thread::scope` propagates the task's actual panic).
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Batch {
    /// Claims the next chunk of unexecuted indices, or `None` when the
    /// injector is dry.
    fn claim(&self) -> Option<std::ops::Range<usize>> {
        let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= self.n {
            return None;
        }
        Some(start..(start + self.chunk).min(self.n))
    }
}

struct State {
    /// Active batches, oldest first. Usually 0 or 1 long; grows only
    /// when several threads submit to the same pool concurrently (e.g.
    /// a shared candidate-level pool called from many user-level
    /// workers).
    queue: VecDeque<Arc<Batch>>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers park here waiting for batches (or shutdown).
    work: Condvar,
    /// Submitters park here waiting for their batch to finish.
    done: Condvar,
}

/// A persistent worker pool: threads are spawned once at construction,
/// parked between calls, and joined on drop.
///
/// Work distribution is a shared injector with chunked claiming: every
/// call becomes a batch with an atomic cursor, and workers grab the
/// next chunk whenever they run dry — the same dynamic balancing that
/// makes [`super::WorkStealingExecutor`] fit skewed workloads, minus
/// the per-call thread spawn. Multiple threads may submit batches
/// concurrently; batches queue and workers drain them oldest-first.
///
/// A task that (transitively) calls back into **its own** pool runs the
/// nested batch inline on the same worker — no deadlock, and the nested
/// tasks report the worker's own slot, preserving slot exclusivity.
///
/// Dropping the pool wakes and joins every worker: no leaked threads.
/// A task panic is caught and its payload re-raised on the submitting
/// thread once the batch completes (first panic wins, matching the
/// scoped backends' propagation); the pool itself survives and stays
/// usable.
pub struct PersistentPoolExecutor {
    shared: Arc<Shared>,
    threads: usize,
    workers: Vec<JoinHandle<()>>,
}

impl PersistentPoolExecutor {
    /// Spawns a pool of `threads` parked workers (at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|slot| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mood-exec-{slot}"))
                    .spawn(move || worker_loop(&shared, slot))
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            shared,
            threads,
            workers,
        }
    }

    /// Number of live worker threads (for tests and diagnostics).
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }
}

impl std::fmt::Debug for PersistentPoolExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PersistentPoolExecutor")
            .field("threads", &self.threads)
            .finish()
    }
}

fn worker_loop(shared: &Shared, slot: usize) {
    WORKER_CONTEXT.with(|ctx| ctx.set(Some((std::ptr::from_ref(shared) as usize, slot))));
    loop {
        let batch = {
            let mut state = shared.state.lock().expect("pool state lock");
            loop {
                // Claimable = injector not yet exhausted. Fully claimed
                // but unfinished batches need no more workers.
                if let Some(batch) = state
                    .queue
                    .iter()
                    .find(|b| b.next.load(Ordering::Relaxed) < b.n)
                {
                    break Arc::clone(batch);
                }
                if state.shutdown {
                    return;
                }
                state = shared.work.wait(state).expect("pool state lock");
            }
        };
        run_batch(shared, &batch, slot);
    }
}

/// Drains the injector of `batch` from worker `slot`, signalling the
/// submitter when the last invocation lands.
fn run_batch(shared: &Shared, batch: &Arc<Batch>, slot: usize) {
    while let Some(range) = batch.claim() {
        for i in range {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| batch.task.call(i, slot))) {
                let mut first = batch.panic.lock().expect("batch panic slot");
                first.get_or_insert(payload);
            }
            let done = batch.finished.fetch_add(1, Ordering::AcqRel) + 1;
            if done == batch.n {
                let mut state = shared.state.lock().expect("pool state lock");
                state.queue.retain(|b| !Arc::ptr_eq(b, batch));
                shared.done.notify_all();
            }
        }
    }
}

impl Executor for PersistentPoolExecutor {
    fn name(&self) -> &'static str {
        "persistent"
    }

    fn max_threads(&self) -> usize {
        self.threads
    }

    fn for_each_index_slot(&self, n: usize, task: &(dyn Fn(usize, usize) + Sync)) {
        if n == 0 {
            return;
        }
        // Nested submission from one of this pool's own workers: the
        // worker would otherwise wait for peers that may all be blocked
        // the same way. Run inline on this worker's slot — exclusive by
        // construction, since the slot belongs to this very thread.
        let own_slot = WORKER_CONTEXT.with(|ctx| match ctx.get() {
            Some((pool, slot)) if pool == Arc::as_ptr(&self.shared) as usize => Some(slot),
            _ => None,
        });
        if let Some(slot) = own_slot {
            for i in 0..n {
                task(i, slot);
            }
            return;
        }

        // Chunked claiming: small enough for balance on skewed work,
        // large enough that the atomic cursor isn't contended. Small
        // batches (MooD candidate sets are 3–12 jobs) degrade to
        // chunk = 1, i.e. pure dynamic scheduling.
        let chunk = (n / (self.threads * 4)).max(1);
        let batch = Arc::new(Batch {
            task: TaskRef::erase(task),
            n,
            chunk,
            next: AtomicUsize::new(0),
            finished: AtomicUsize::new(0),
            panic: Mutex::new(None),
        });
        let mut state = self.shared.state.lock().expect("pool state lock");
        state.queue.push_back(Arc::clone(&batch));
        self.shared.work.notify_all();
        while batch.finished.load(Ordering::Acquire) < n {
            state = self.shared.done.wait(state).expect("pool state lock");
        }
        drop(state);
        let payload = batch.panic.lock().expect("batch panic slot").take();
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }
}

impl Drop for PersistentPoolExecutor {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool state lock");
            state.shutdown = true;
            self.shared.work.notify_all();
        }
        for handle in self.workers.drain(..) {
            // A worker that panicked outside a task (impossible today)
            // should not abort the drop of the remaining handles.
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map_indexed;

    #[test]
    fn empty_call_leaves_pool_reusable() {
        let pool = PersistentPoolExecutor::new(4);
        pool.for_each_index(0, &|_| unreachable!("no indices to run"));
        let got = map_indexed(&pool, 10, |i| i * 2);
        assert_eq!(got, (0..10).map(|i| i * 2).collect::<Vec<_>>());
        pool.for_each_index(0, &|_| unreachable!("no indices to run"));
        assert_eq!(map_indexed(&pool, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn many_sequential_calls_reuse_the_same_workers() {
        let pool = PersistentPoolExecutor::new(2);
        assert_eq!(pool.worker_count(), 2);
        for round in 0..200 {
            let got = map_indexed(&pool, 7, |i| i + round);
            assert_eq!(got, (0..7).map(|i| i + round).collect::<Vec<_>>());
        }
        assert_eq!(pool.worker_count(), 2);
    }

    #[test]
    fn concurrent_submitters_share_one_pool() {
        let pool = Arc::new(PersistentPoolExecutor::new(4));
        std::thread::scope(|scope| {
            for t in 0..8 {
                let pool = Arc::clone(&pool);
                scope.spawn(move || {
                    for round in 0..20 {
                        let got = map_indexed(pool.as_ref(), 31, |i| i * t + round);
                        assert_eq!(got, (0..31).map(|i| i * t + round).collect::<Vec<_>>());
                    }
                });
            }
        });
    }

    #[test]
    fn nested_submission_to_own_pool_runs_inline() {
        let pool = PersistentPoolExecutor::new(2);
        let totals = map_indexed(&pool, 6, |i| {
            // Each outer task fans out again on the same pool.
            let inner = map_indexed(&pool, 4, |j| i * 10 + j);
            inner.into_iter().sum::<usize>()
        });
        let expected: Vec<usize> = (0..6).map(|i| (0..4).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(totals, expected);
    }

    #[test]
    fn task_panic_propagates_with_payload_and_pool_survives() {
        let pool = PersistentPoolExecutor::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.for_each_index(8, &|i| {
                if i == 3 {
                    panic!("boom");
                }
            });
        }));
        let payload = result.expect_err("panic must reach the submitter");
        assert_eq!(
            payload.downcast_ref::<&str>(),
            Some(&"boom"),
            "the task's own payload must survive, not a generic message"
        );
        // The pool is still operational afterwards.
        assert_eq!(map_indexed(&pool, 5, |i| i), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn drop_joins_all_workers() {
        // Joining in Drop is the no-leak guarantee; this checks it
        // terminates promptly even right after heavy use.
        for _ in 0..10 {
            let pool = PersistentPoolExecutor::new(4);
            let _ = map_indexed(&pool, 100, |i| i);
            drop(pool);
        }
    }
}
