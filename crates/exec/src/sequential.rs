use super::Executor;

/// The reference backend: every task runs inline on the calling thread,
/// in index order, always on worker slot 0.
///
/// This is the executor of record for determinism checks — the parallel
/// backends are correct exactly when they reproduce its output — and
/// the right choice for small inputs, where thread setup would dominate.
#[derive(Debug, Clone, Copy, Default)]
pub struct SequentialExecutor;

impl Executor for SequentialExecutor {
    fn name(&self) -> &'static str {
        "sequential"
    }

    fn max_threads(&self) -> usize {
        1
    }

    fn for_each_index_slot(&self, n: usize, task: &(dyn Fn(usize, usize) + Sync)) {
        for i in 0..n {
            task(i, 0);
        }
    }
}
