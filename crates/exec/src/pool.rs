use super::Executor;

/// Scoped threads with static index chunking.
///
/// Indices `0..n` are split into one contiguous chunk per worker; the
/// worker's position doubles as its slot id. There is no load
/// balancing: with uniform tasks this has the lowest synchronization
/// cost of the scoped backends, but a skewed chunk leaves its worker
/// busy while the others idle (that's what
/// [`super::WorkStealingExecutor`] fixes). Threads are spawned per
/// call; [`super::PersistentPoolExecutor`] amortizes that cost.
#[derive(Debug, Clone, Copy)]
pub struct ScopedPoolExecutor {
    threads: usize,
}

impl ScopedPoolExecutor {
    /// A pool using up to `threads` workers (at least 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }
}

impl Executor for ScopedPoolExecutor {
    fn name(&self) -> &'static str {
        "pool"
    }

    fn max_threads(&self) -> usize {
        self.threads
    }

    fn for_each_index_slot(&self, n: usize, task: &(dyn Fn(usize, usize) + Sync)) {
        let workers = self.threads.min(n);
        if workers <= 1 {
            for i in 0..n {
                task(i, 0);
            }
            return;
        }
        // Chunk sizes differ by at most one: the first `rest` chunks
        // take an extra index.
        let base = n / workers;
        let rest = n % workers;
        std::thread::scope(|scope| {
            let mut start = 0;
            for w in 0..workers {
                let len = base + usize::from(w < rest);
                let range = start..start + len;
                start += len;
                scope.spawn(move || {
                    for i in range {
                        task(i, w);
                    }
                });
            }
        });
    }
}
