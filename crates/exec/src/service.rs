//! A bounded job queue drained by long-lived service workers.
//!
//! The [`Executor`](super::Executor) backends run *index-parallel
//! batches*: the submitter blocks until every task of the batch has
//! finished. A network front-end needs the opposite shape — jobs
//! (connections) arrive one at a time from an acceptor that must
//! **never** block, each job can run for a long time (a keep-alive
//! connection lives as long as the client holds it), and overload has
//! to surface *immediately* so the acceptor can shed load instead of
//! queueing unboundedly. [`ServicePool`] is that shape: a fixed set of
//! workers spawned once, a bounded FIFO queue, a non-blocking
//! [`ServicePool::try_submit`] that reports `Full` for backpressure,
//! and a graceful [`ServicePool::shutdown`] that drains the queue and
//! joins every worker — no leaked threads.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Why [`ServicePool::try_submit`] rejected a job; the job is handed
/// back so the caller can dispose of it (e.g. answer 503 and close).
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError<T> {
    /// The queue is at capacity — backpressure; shed load.
    Full(T),
    /// The pool is shutting down and accepts no new jobs.
    ShuttingDown(T),
}

struct ServiceState<T> {
    /// Each job carries its enqueue instant so workers can attribute
    /// queue-wait time (observability-only; never affects results).
    queue: VecDeque<(T, Instant)>,
    shutdown: bool,
}

struct ServiceShared<T> {
    state: Mutex<ServiceState<T>>,
    /// Workers park here waiting for jobs (or shutdown).
    work: Condvar,
    capacity: usize,
    /// Handler invocations that panicked (caught; the worker survives).
    panics: AtomicU64,
    /// Jobs currently inside a handler.
    in_flight: AtomicU64,
    /// Total queue-wait nanoseconds across dequeued jobs.
    wait_ns: AtomicU64,
    /// Jobs claimed by a worker since construction.
    dequeued: AtomicU64,
}

/// A point-in-time snapshot of a pool's queue health
/// ([`ServicePool::queue_stats`]) — the source for the serve layer's
/// queue-depth and in-flight gauges and its queue-wait summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueStats {
    /// Jobs queued and not yet claimed by a worker.
    pub pending: usize,
    /// Jobs currently inside a handler.
    pub in_flight: u64,
    /// Jobs claimed by a worker since construction.
    pub dequeued: u64,
    /// Total time dequeued jobs spent waiting in the queue.
    pub waited: Duration,
}

/// A fault-injection hook consulted by [`ServicePool::try_submit`]:
/// returning `true` for a job forces a [`SubmitError::Full`] rejection
/// as if the queue were at capacity. Built for deterministic chaos
/// testing of the shedding path (the serve layer wires a seeded fault
/// plan through it); pools built with [`ServicePool::new`] carry no
/// gate and pay nothing for the feature.
pub type SubmitGate<T> = Box<dyn Fn(&T) -> bool + Send + Sync>;

/// A fixed pool of service workers fed through a bounded FIFO queue.
///
/// Each worker runs `handler(slot, job)` for one job at a time; `slot`
/// is the worker's stable index (`0..threads`), exclusive to that
/// worker for its lifetime. A handler panic is caught and counted
/// ([`ServicePool::handler_panics`]); the worker keeps serving.
///
/// Shutdown semantics: [`ServicePool::shutdown`] (also run on drop)
/// stops admissions, lets workers drain the jobs already queued, then
/// joins them. Handlers that loop (keep-alive connections) are
/// expected to watch their own stop signal and return promptly.
pub struct ServicePool<T: Send + 'static> {
    shared: Arc<ServiceShared<T>>,
    /// Interior mutability so `shutdown(&self)` can join: the acceptor
    /// thread holds the pool behind an `Arc` and still must be able to
    /// trigger a join-free signal path.
    workers: Mutex<Vec<JoinHandle<()>>>,
    threads: usize,
    /// Optional forced-shedding hook (see [`SubmitGate`]).
    gate: Option<SubmitGate<T>>,
}

impl<T: Send + 'static> ServicePool<T> {
    /// Spawns `threads` workers (at least 1) named `{name}-{slot}`,
    /// with room for `capacity` queued jobs (at least 1) beyond the
    /// ones being handled.
    pub fn new<F>(name: &str, threads: usize, capacity: usize, handler: F) -> Self
    where
        F: Fn(usize, T) + Send + Sync + 'static,
    {
        Self::with_submit_gate(name, threads, capacity, handler, None)
    }

    /// [`ServicePool::new`] with an optional [`SubmitGate`]: jobs the
    /// gate flags are rejected as [`SubmitError::Full`] before touching
    /// the queue — the chaos layer's forced queue-full shedding.
    pub fn with_submit_gate<F>(
        name: &str,
        threads: usize,
        capacity: usize,
        handler: F,
        gate: Option<SubmitGate<T>>,
    ) -> Self
    where
        F: Fn(usize, T) + Send + Sync + 'static,
    {
        let threads = threads.max(1);
        let shared = Arc::new(ServiceShared {
            state: Mutex::new(ServiceState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
            capacity: capacity.max(1),
            panics: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            wait_ns: AtomicU64::new(0),
            dequeued: AtomicU64::new(0),
        });
        let handler = Arc::new(handler);
        let workers = (0..threads)
            .map(|slot| {
                let shared = Arc::clone(&shared);
                let handler = Arc::clone(&handler);
                std::thread::Builder::new()
                    .name(format!("{name}-{slot}"))
                    .spawn(move || service_loop(&shared, slot, handler.as_ref()))
                    .expect("spawn service worker")
            })
            .collect();
        Self {
            shared,
            workers: Mutex::new(workers),
            threads,
            gate,
        }
    }

    /// Enqueues a job without blocking.
    ///
    /// # Errors
    ///
    /// Returns the job back as [`SubmitError::Full`] when the queue is
    /// at capacity (or the submit gate flags the job) and
    /// [`SubmitError::ShuttingDown`] after shutdown began.
    pub fn try_submit(&self, job: T) -> Result<(), SubmitError<T>> {
        if let Some(gate) = &self.gate {
            if gate(&job) {
                return Err(SubmitError::Full(job));
            }
        }
        let mut state = self.shared.state.lock().expect("service state lock");
        if state.shutdown {
            return Err(SubmitError::ShuttingDown(job));
        }
        if state.queue.len() >= self.shared.capacity {
            return Err(SubmitError::Full(job));
        }
        state.queue.push_back((job, Instant::now()));
        drop(state);
        self.shared.work.notify_one();
        Ok(())
    }

    /// Jobs queued and not yet claimed by a worker.
    pub fn pending(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("service state lock")
            .queue
            .len()
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.threads
    }

    /// Handler invocations that panicked since construction.
    pub fn handler_panics(&self) -> u64 {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// Snapshot of queue depth, in-flight jobs, and accumulated
    /// queue-wait time.
    pub fn queue_stats(&self) -> QueueStats {
        QueueStats {
            pending: self.pending(),
            in_flight: self.shared.in_flight.load(Ordering::Relaxed),
            dequeued: self.shared.dequeued.load(Ordering::Relaxed),
            waited: Duration::from_nanos(self.shared.wait_ns.load(Ordering::Relaxed)),
        }
    }

    /// Stops admissions, drains already-queued jobs and joins every
    /// worker. Idempotent; also runs on drop. Must not be called from
    /// inside a handler (a worker cannot join itself).
    pub fn shutdown(&self) {
        {
            let mut state = self.shared.state.lock().expect("service state lock");
            state.shutdown = true;
            self.shared.work.notify_all();
        }
        let handles = std::mem::take(&mut *self.workers.lock().expect("service workers lock"));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl<T: Send + 'static> Drop for ServicePool<T> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl<T: Send + 'static> std::fmt::Debug for ServicePool<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServicePool")
            .field("threads", &self.threads)
            .field("capacity", &self.shared.capacity)
            .finish()
    }
}

fn service_loop<T: Send>(shared: &ServiceShared<T>, slot: usize, handler: &dyn Fn(usize, T)) {
    loop {
        let (job, enqueued) = {
            let mut state = shared.state.lock().expect("service state lock");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = shared.work.wait(state).expect("service state lock");
            }
        };
        shared
            .wait_ns
            .fetch_add(enqueued.elapsed().as_nanos() as u64, Ordering::Relaxed);
        shared.dequeued.fetch_add(1, Ordering::Relaxed);
        shared.in_flight.fetch_add(1, Ordering::Relaxed);
        if catch_unwind(AssertUnwindSafe(|| handler(slot, job))).is_err() {
            shared.panics.fetch_add(1, Ordering::Relaxed);
        }
        shared.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn jobs_run_and_slots_stay_in_bounds() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let pool = ServicePool::new("svc-test", 3, 64, move |slot, job: usize| {
            assert!(slot < 3);
            sink.lock().unwrap().push(job);
        });
        for i in 0..50 {
            pool.try_submit(i).expect("queue has room");
        }
        pool.shutdown();
        let mut got = seen.lock().unwrap().clone();
        got.sort_unstable();
        assert_eq!(got, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn full_queue_returns_the_job_for_load_shedding() {
        // One worker blocked on a slow job; capacity 2 then overflow.
        let release = Arc::new((Mutex::new(false), Condvar::new()));
        let gate = Arc::clone(&release);
        let started = Arc::new((Mutex::new(false), Condvar::new()));
        let started_tx = Arc::clone(&started);
        let pool = ServicePool::new("svc-full", 1, 2, move |_slot, _job: u32| {
            let (lock, cv) = &*started_tx;
            *lock.lock().unwrap() = true;
            cv.notify_all();
            let (lock, cv) = &*gate;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        });
        pool.try_submit(0).unwrap();
        // Wait until the worker actually holds job 0, so the queue
        // depth below is deterministic.
        {
            let (lock, cv) = &*started;
            let mut s = lock.lock().unwrap();
            while !*s {
                s = cv.wait(s).unwrap();
            }
        }
        pool.try_submit(1).unwrap();
        pool.try_submit(2).unwrap();
        assert_eq!(pool.try_submit(3), Err(SubmitError::Full(3)));
        let (lock, cv) = &*release;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs_then_rejects() {
        let done = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&done);
        let pool = ServicePool::new("svc-drain", 2, 32, move |_slot, _job: u8| {
            std::thread::sleep(Duration::from_millis(2));
            counter.fetch_add(1, Ordering::SeqCst);
        });
        for i in 0..20 {
            pool.try_submit(i).unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 20, "queued jobs must drain");
        assert_eq!(pool.try_submit(99), Err(SubmitError::ShuttingDown(99)));
        // Idempotent: a second shutdown is a no-op.
        pool.shutdown();
    }

    #[test]
    fn handler_panics_are_caught_and_counted() {
        let done = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&done);
        let pool = ServicePool::new("svc-panic", 1, 32, move |_slot, job: u32| {
            if job == 1 {
                panic!("handler blew up");
            }
            counter.fetch_add(1, Ordering::SeqCst);
        });
        for job in 0..4 {
            pool.try_submit(job).unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 3, "survivors keep running");
        assert_eq!(pool.handler_panics(), 1);
    }

    #[test]
    fn submit_gate_forces_full_without_touching_the_queue() {
        let done = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&done);
        let pool = ServicePool::with_submit_gate(
            "svc-gate",
            1,
            32,
            move |_slot, _job: u32| {
                counter.fetch_add(1, Ordering::SeqCst);
            },
            Some(Box::new(|job: &u32| *job % 2 == 1)),
        );
        assert_eq!(pool.try_submit(1), Err(SubmitError::Full(1)));
        assert_eq!(pool.try_submit(3), Err(SubmitError::Full(3)));
        pool.try_submit(0).unwrap();
        pool.try_submit(2).unwrap();
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 2, "gated jobs never ran");
    }

    #[test]
    fn queue_stats_track_depth_in_flight_and_wait() {
        // One worker blocked on job 0; two jobs queued behind it, so
        // the snapshot is deterministic: pending == 2, in_flight == 1.
        let release = Arc::new((Mutex::new(false), Condvar::new()));
        let gate = Arc::clone(&release);
        let started = Arc::new((Mutex::new(false), Condvar::new()));
        let started_tx = Arc::clone(&started);
        let pool = ServicePool::new("svc-stats", 1, 8, move |_slot, _job: u32| {
            let (lock, cv) = &*started_tx;
            *lock.lock().unwrap() = true;
            cv.notify_all();
            let (lock, cv) = &*gate;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        });
        pool.try_submit(0).unwrap();
        {
            let (lock, cv) = &*started;
            let mut s = lock.lock().unwrap();
            while !*s {
                s = cv.wait(s).unwrap();
            }
        }
        pool.try_submit(1).unwrap();
        pool.try_submit(2).unwrap();
        let stats = pool.queue_stats();
        assert_eq!(stats.pending, 2, "two jobs waiting behind the blocked one");
        assert_eq!(stats.in_flight, 1, "one job inside the handler");
        assert_eq!(stats.dequeued, 1);
        let (lock, cv) = &*release;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        pool.shutdown();
        let stats = pool.queue_stats();
        assert_eq!(stats.pending, 0);
        assert_eq!(stats.in_flight, 0);
        assert_eq!(stats.dequeued, 3, "every job was eventually claimed");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn shutdown_leaks_no_threads() {
        fn thread_count() -> usize {
            std::fs::read_dir("/proc/self/task")
                .map(|dir| dir.count())
                .unwrap_or(0)
        }
        let before = thread_count();
        for _ in 0..8 {
            let pool = ServicePool::new("svc-leak", 4, 8, |_slot, _job: usize| {});
            for i in 0..16 {
                let _ = pool.try_submit(i);
            }
            pool.shutdown();
        }
        let after = thread_count();
        assert!(
            after <= before + 2,
            "thread count grew from {before} to {after} across pool cycles"
        );
    }
}
