//! Minimal, dependency-free stand-in for `proptest`.
//!
//! Supports the subset this workspace uses: the [`Strategy`] trait with
//! `prop_map`, range strategies over integers and floats, tuple
//! strategies, [`collection::vec`], the `proptest!` macro (with an
//! optional `#![proptest_config(...)]` header), and
//! `prop_assert!`/`prop_assert_eq!`.
//!
//! No shrinking: a failing case panics with the generated inputs'
//! `Debug` rendering via the standard assertion message. Cases are
//! generated deterministically from the test name, so failures
//! reproduce exactly.

#![forbid(unsafe_code)]

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of cases to run per property (proptest's default is 256; this
/// shim trades cases for CI time).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Cases generated per property test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
}

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from `len` and elements
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap`s with *up to* `len.end` entries (key
    /// collisions collapse, as in upstream proptest).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        len: Range<usize>,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy { key, value, len }
    }

    /// Strategy returned by [`btree_map`].
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        len: Range<usize>,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = std::collections::BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

/// Deterministic per-test RNG: a function of the test name and case
/// index only, so failures reproduce run after run.
pub fn deterministic_rng(test_name: &str, case: u64) -> StdRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// The common imports of proptest-based test modules.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Defines property tests: each `#[test] fn name(pat in strategy, ...)`
/// block runs its body for every generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) $( #[test] fn $name:ident ( $($args:tt)* ) $body:block )* ) => {
        $(
            #[test]
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng =
                        $crate::deterministic_rng(stringify!($name), __case as u64);
                    $crate::__proptest_bind!(__rng, $($args)*);
                    $body
                }
            }
        )*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident,) => {};
    ($rng:ident, $pat:pat in $($rest:tt)+) => {
        $crate::__proptest_strat!($rng, ($pat), [], $($rest)+);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_strat {
    ($rng:ident, ($pat:pat), [$($acc:tt)*],) => {
        let $pat = $crate::Strategy::generate(&($($acc)*), &mut $rng);
    };
    ($rng:ident, ($pat:pat), [$($acc:tt)*], , $($rest:tt)*) => {
        let $pat = $crate::Strategy::generate(&($($acc)*), &mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, ($pat:pat), [$($acc:tt)*], $next:tt $($rest:tt)*) => {
        $crate::__proptest_strat!($rng, ($pat), [$($acc)* $next], $($rest)*);
    };
}

/// Asserts a property; on failure the test panics with the message.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality of two expressions.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (i64, f64)> {
        (0i64..100, 0.0f64..1.0).prop_map(|(a, b)| (a * 2, b))
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 0i64..10, f in 0.5f64..0.75) {
            prop_assert!((0..10).contains(&x));
            prop_assert!((0.5..0.75).contains(&f));
        }

        #[test]
        fn mapped_values(p in arb_pair()) {
            prop_assert_eq!(p.0 % 2, 0);
        }

        #[test]
        fn vectors_respect_len(
            v in collection::vec((0usize..5, 0.0f64..1.0), 1..20),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]

        #[test]
        fn config_header_accepted(x in 0u64..5) {
            prop_assert!(x < 5);
        }
    }

    #[test]
    fn rng_is_deterministic_per_test() {
        use crate::Strategy;
        let s = 0i64..1000;
        let a = s.generate(&mut crate::deterministic_rng("t", 0));
        let b = s.generate(&mut crate::deterministic_rng("t", 0));
        assert_eq!(a, b);
    }
}
