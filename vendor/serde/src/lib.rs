//! Minimal, dependency-free stand-in for `serde` (+ derive).
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of serde it uses: `#[derive(Serialize, Deserialize)]` over
//! named structs, newtype structs and enums (unit and struct variants),
//! the container attributes `#[serde(try_from = "...", from = "...",
//! into = "...")]`, and JSON-shaped serialization through the sibling
//! `serde_json` shim.
//!
//! Instead of serde's visitor-based data model, everything funnels
//! through one concrete [`Value`] tree — exactly expressive enough for
//! JSON, which is the only format the workspace reads or writes.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the intermediate representation every
/// [`Serialize`]/[`Deserialize`] implementation converts through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (JSON number without fraction/exponent).
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, when this value is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key))
            .map(|(_, v)| v)
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// Error for an unexpected value kind.
    pub fn unexpected(expected: &str, got: &Value) -> Self {
        Self::custom(format!("expected {expected}, got {}", got.kind()))
    }

    /// Error for a missing object field.
    pub fn missing_field(field: &str) -> Self {
        Self::custom(format!("missing field `{field}`"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types convertible into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the JSON-shaped value tree.
    fn to_value(&self) -> Value;
}

/// A value tree serializes as itself: lets already-assembled [`Value`]s
/// (e.g. hand-built JSON documents) flow through the same writer paths
/// as derived types.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

/// Types constructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Builds `Self` from the JSON-shaped value tree.
    ///
    /// # Errors
    ///
    /// Returns an error when the value's shape does not match.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::unexpected("bool", other)),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide: i128 = match value {
                    Value::Int(i) => *i as i128,
                    Value::UInt(u) => *u as i128,
                    other => return Err(Error::unexpected("integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!("integer {wide} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                match i64::try_from(wide) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(wide),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide: i128 = match value {
                    Value::Int(i) => *i as i128,
                    Value::UInt(u) => *u as i128,
                    other => return Err(Error::unexpected("integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!("integer {wide} out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(Error::unexpected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::unexpected("string", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::unexpected("array", other)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                const LEN: usize = [$($idx),+].len();
                match value {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::unexpected("tuple array", other)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}

/// Converts a serialized key into a JSON object key string.
fn key_to_string(key: &Value) -> Result<String, Error> {
    match key {
        Value::Str(s) => Ok(s.clone()),
        Value::Int(i) => Ok(i.to_string()),
        Value::UInt(u) => Ok(u.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        other => Err(Error::custom(format!(
            "map key must be a string-like value, got {}",
            other.kind()
        ))),
    }
}

/// Recovers a key from its JSON object key string.
fn key_from_string<K: Deserialize>(key: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_value(&Value::Str(key.to_string())) {
        return Ok(k);
    }
    if let Ok(i) = key.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::Int(i)) {
            return Ok(k);
        }
    }
    if let Ok(u) = key.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::UInt(u)) {
            return Ok(k);
        }
    }
    Err(Error::custom(format!("cannot parse map key `{key}`")))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let entries = self
            .iter()
            .map(|(k, v)| {
                let key = key_to_string(&k.to_value())
                    .expect("map keys must serialize to string-like values");
                (key, v.to_value())
            })
            .collect();
        Value::Object(entries)
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::unexpected("object", other)),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                let key = key_to_string(&k.to_value())
                    .expect("map keys must serialize to string-like values");
                (key, v.to_value())
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::unexpected("object", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(i64::from_value(&42i64.to_value()).unwrap(), 42);
        assert_eq!(usize::from_value(&7usize.to_value()).unwrap(), 7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert!(bool::from_value(&true.to_value()).unwrap());
    }

    #[test]
    fn int_deserialize_rejects_floats() {
        assert!(i64::from_value(&Value::Float(1.5)).is_err());
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<(u32, f64)> = vec![(1, 0.5), (2, 1.5)];
        let back = Vec::<(u32, f64)>::from_value(&v.to_value()).unwrap();
        assert_eq!(v, back);

        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1usize);
        let back = BTreeMap::<String, usize>::from_value(&m.to_value()).unwrap();
        assert_eq!(m, back);

        let o: Option<i64> = None;
        assert_eq!(Option::<i64>::from_value(&o.to_value()).unwrap(), None);
    }

    #[test]
    fn integer_map_keys_roundtrip() {
        let mut m = BTreeMap::new();
        m.insert(5u64, "x".to_string());
        let v = m.to_value();
        let back = BTreeMap::<u64, String>::from_value(&v).unwrap();
        assert_eq!(m, back);
    }
}
