//! Minimal, dependency-free stand-in for `criterion`.
//!
//! Implements the API surface the workspace's benches use —
//! `Criterion::bench_function`, benchmark groups with
//! `bench_with_input`, `BenchmarkId`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! wall-clock harness: one warm-up iteration, then `sample_size` timed
//! iterations, reporting min/mean per iteration.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of the standard black box, criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter rendering.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only the parameter rendering.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` once to warm up, then `sample_size` timed times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().expect("non-empty");
    println!(
        "{label:<40} mean {:>12.3?}   min {:>12.3?}   ({} samples)",
        mean,
        min,
        samples.len()
    );
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        report(name, &bencher.samples);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample size for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one parameterized benchmark of the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        report(&format!("{}/{}", self.name, id), &bencher.samples);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::core::default::Default>::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("p", 3), &3, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }

    criterion_group!(smoke, quick);

    #[test]
    fn harness_runs() {
        smoke();
    }
}
