//! Minimal, dependency-free stand-in for `serde_json`.
//!
//! Serializes and parses the JSON subset the vendored [`serde`] shim's
//! [`Value`] tree expresses — which is all of JSON. Numbers are written
//! so that the integer/float distinction survives a round-trip: floats
//! always carry a decimal point or exponent (`1.0`, `3e300`), integers
//! never do.
//!
//! Serialization streams through any [`std::io::Write`] sink
//! ([`to_writer`] / [`to_writer_pretty`]); [`to_string`] is a thin
//! wrapper over an in-memory buffer. [`from_reader`] is the matching
//! input-side helper.

#![forbid(unsafe_code)]

pub use serde::Error;
pub use serde::Value;

use std::io::{Read, Write};

use serde::{Deserialize, Serialize};

/// Converts an I/O failure into the shim's error type.
fn io_error(e: std::io::Error) -> Error {
    Error::custom(format!("io error: {e}"))
}

/// Serializes `value` as compact JSON directly into `writer` — no
/// intermediate `String`; the hot path for service responses.
///
/// # Errors
///
/// Returns an error when the value contains a non-finite float or the
/// writer fails.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    write_value(&mut writer, &value.to_value(), None, 0)
}

/// Serializes `value` as pretty-printed JSON (two-space indent)
/// directly into `writer`.
///
/// # Errors
///
/// Returns an error when the value contains a non-finite float or the
/// writer fails.
pub fn to_writer_pretty<W: Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    write_value(&mut writer, &value.to_value(), Some(2), 0)
}

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Returns an error when the value contains a non-finite float.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = Vec::new();
    to_writer(&mut out, value)?;
    Ok(String::from_utf8(out).expect("serializer emits UTF-8"))
}

/// Serializes `value` to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Returns an error when the value contains a non-finite float.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = Vec::new();
    to_writer_pretty(&mut out, value)?;
    Ok(String::from_utf8(out).expect("serializer emits UTF-8"))
}

/// Parses a value of type `T` from a reader (drained to its end, since
/// a complete-document check needs the whole input anyway).
///
/// # Errors
///
/// Returns an error when the reader fails, the bytes are not UTF-8, the
/// JSON is malformed or its shape does not match `T`.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes).map_err(io_error)?;
    let text = std::str::from_utf8(&bytes).map_err(|_| Error::custom("input is not UTF-8"))?;
    from_str(text)
}

/// Parses a value of type `T` from JSON text.
///
/// # Errors
///
/// Returns an error on malformed JSON, trailing garbage, or a shape
/// mismatch with `T`.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let value = parse_value_complete(input)?;
    T::from_value(&value)
}

/// Parses JSON text into a raw [`Value`] tree.
///
/// # Errors
///
/// Returns an error on malformed JSON or trailing garbage.
pub fn parse_value_complete(input: &str) -> Result<Value, Error> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::custom(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

fn write_value<W: Write>(
    out: &mut W,
    value: &Value,
    indent: Option<usize>,
    level: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.write_all(b"null").map_err(io_error)?,
        Value::Bool(true) => out.write_all(b"true").map_err(io_error)?,
        Value::Bool(false) => out.write_all(b"false").map_err(io_error)?,
        Value::Int(i) => write!(out, "{i}").map_err(io_error)?,
        Value::UInt(u) => write!(out, "{u}").map_err(io_error)?,
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::custom("cannot serialize non-finite float"));
            }
            // `{:?}` always keeps a `.0` or exponent, so the value parses
            // back as a float.
            write!(out, "{f:?}").map_err(io_error)?;
        }
        Value::Str(s) => write_string(out, s)?,
        Value::Array(items) => {
            if items.is_empty() {
                return out.write_all(b"[]").map_err(io_error);
            }
            out.write_all(b"[").map_err(io_error)?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.write_all(b",").map_err(io_error)?;
                }
                newline_indent(out, indent, level + 1)?;
                write_value(out, item, indent, level + 1)?;
            }
            newline_indent(out, indent, level)?;
            out.write_all(b"]").map_err(io_error)?;
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                return out.write_all(b"{}").map_err(io_error);
            }
            out.write_all(b"{").map_err(io_error)?;
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.write_all(b",").map_err(io_error)?;
                }
                newline_indent(out, indent, level + 1)?;
                write_string(out, key)?;
                out.write_all(b":").map_err(io_error)?;
                if indent.is_some() {
                    out.write_all(b" ").map_err(io_error)?;
                }
                write_value(out, item, indent, level + 1)?;
            }
            newline_indent(out, indent, level)?;
            out.write_all(b"}").map_err(io_error)?;
        }
    }
    Ok(())
}

fn newline_indent<W: Write>(out: &mut W, indent: Option<usize>, level: usize) -> Result<(), Error> {
    if let Some(width) = indent {
        out.write_all(b"\n").map_err(io_error)?;
        for _ in 0..width * level {
            out.write_all(b" ").map_err(io_error)?;
        }
    }
    Ok(())
}

fn write_string<W: Write>(out: &mut W, s: &str) -> Result<(), Error> {
    out.write_all(b"\"").map_err(io_error)?;
    for c in s.chars() {
        match c {
            '"' => out.write_all(b"\\\"").map_err(io_error)?,
            '\\' => out.write_all(b"\\\\").map_err(io_error)?,
            '\n' => out.write_all(b"\\n").map_err(io_error)?,
            '\r' => out.write_all(b"\\r").map_err(io_error)?,
            '\t' => out.write_all(b"\\t").map_err(io_error)?,
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).map_err(io_error)?;
            }
            c => {
                let mut utf8 = [0u8; 4];
                out.write_all(c.encode_utf8(&mut utf8).as_bytes())
                    .map_err(io_error)?;
            }
        }
    }
    out.write_all(b"\"").map_err(io_error)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::custom("unexpected end of input")),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::custom(format!("expected , or ] at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(Error::custom(format!("expected : at byte {pos}")));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(entries));
                    }
                    _ => return Err(Error::custom(format!("expected , or }} at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    keyword: &str,
    value: Value,
) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(keyword.as_bytes()) {
        *pos += keyword.len();
        Ok(value)
    } else {
        Err(Error::custom(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error::custom(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        // Bulk path: consume the run up to the next quote or escape in
        // one UTF-8 validation instead of per character (quote and
        // backslash are ASCII, so they never split a multi-byte
        // scalar). Without this, large documents parse quadratically.
        let run_start = *pos;
        while let Some(&b) = bytes.get(*pos) {
            if b == b'"' || b == b'\\' {
                break;
            }
            *pos += 1;
        }
        if *pos > run_start {
            let run = std::str::from_utf8(&bytes[run_start..*pos])
                .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
            out.push_str(run);
        }
        match bytes.get(*pos) {
            None => return Err(Error::custom("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| Error::custom("invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::custom("invalid \\u escape"))?;
                        // Surrogate pairs are not needed by this
                        // workspace's data; map lone surrogates to the
                        // replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(Error::custom("invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => unreachable!("bulk path consumes every non-quote, non-escape byte"),
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| Error::custom("invalid number"))?;
    if text.is_empty() || text == "-" {
        return Err(Error::custom(format!("expected value at byte {start}")));
    }
    if !is_float {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::Int(i));
        }
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::UInt(u));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| Error::custom(format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&1i64).unwrap(), "1");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(from_str::<i64>("1").unwrap(), 1);
        assert_eq!(from_str::<f64>("1.0").unwrap(), 1.0);
        assert_eq!(from_str::<f64>("1").unwrap(), 1.0);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
        assert!(from_str::<i64>("1.5").is_err());
        assert!(from_str::<i64>("1 x").is_err());
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1i64, -2, 3];
        assert_eq!(from_str::<Vec<i64>>(&to_string(&v).unwrap()).unwrap(), v);

        let mut m = BTreeMap::new();
        m.insert("k".to_string(), vec![0.5f64, 1.5]);
        let json = to_string(&m).unwrap();
        assert_eq!(json, "{\"k\":[0.5,1.5]}");
        assert_eq!(from_str::<BTreeMap<String, Vec<f64>>>(&json).unwrap(), m);
    }

    #[test]
    fn pretty_output_is_indented_and_parses_back() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1usize);
        let pretty = to_string_pretty(&m).unwrap();
        assert!(pretty.contains("\n  \"a\": 1\n"));
        assert_eq!(from_str::<BTreeMap<String, usize>>(&pretty).unwrap(), m);
    }

    #[test]
    fn rejects_non_finite() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }

    #[test]
    fn to_writer_matches_to_string() {
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), vec![0.5f64, 1.5]);
        let mut buf = Vec::new();
        to_writer(&mut buf, &m).unwrap();
        assert_eq!(buf, to_string(&m).unwrap().into_bytes());
        let mut pretty = Vec::new();
        to_writer_pretty(&mut pretty, &m).unwrap();
        assert_eq!(pretty, to_string_pretty(&m).unwrap().into_bytes());
    }

    #[test]
    fn from_reader_roundtrips_and_rejects_bad_input() {
        let v = vec![1i64, -2, 3];
        let json = to_string(&v).unwrap();
        let back: Vec<i64> = from_reader(json.as_bytes()).unwrap();
        assert_eq!(back, v);
        assert!(from_reader::<_, Vec<i64>>(&b"[1,"[..]).is_err());
        assert!(from_reader::<_, String>(&[0xff, 0xfe][..]).is_err());
    }

    #[test]
    fn to_writer_propagates_writer_failures() {
        struct Failing;
        impl std::io::Write for Failing {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("sink broke"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let err = to_writer(Failing, &1i64).unwrap_err();
        assert!(err.to_string().contains("io error"), "{err}");
    }

    #[test]
    fn from_reader_propagates_reader_failures() {
        struct Failing;
        impl std::io::Read for Failing {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("tap broke"))
            }
        }
        let err = from_reader::<_, i64>(Failing).unwrap_err();
        assert!(err.to_string().contains("io error"), "{err}");
    }

    #[test]
    fn unicode_and_escapes() {
        let s = "héllo \"world\" \u{1F600}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>("\"\\u0041\"").unwrap(), "A");
    }
}
