//! Minimal, dependency-free stand-in for `serde_json`.
//!
//! Serializes and parses the JSON subset the vendored [`serde`] shim's
//! [`Value`] tree expresses — which is all of JSON. Numbers are written
//! so that the integer/float distinction survives a round-trip: floats
//! always carry a decimal point or exponent (`1.0`, `3e300`), integers
//! never do.

#![forbid(unsafe_code)]

pub use serde::Error;
pub use serde::Value;

use serde::{Deserialize, Serialize};

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Returns an error when the value contains a non-finite float.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes `value` to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Returns an error when the value contains a non-finite float.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parses a value of type `T` from JSON text.
///
/// # Errors
///
/// Returns an error on malformed JSON, trailing garbage, or a shape
/// mismatch with `T`.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let value = parse_value_complete(input)?;
    T::from_value(&value)
}

/// Parses JSON text into a raw [`Value`] tree.
///
/// # Errors
///
/// Returns an error on malformed JSON or trailing garbage.
pub fn parse_value_complete(input: &str) -> Result<Value, Error> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::custom(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

fn write_value(
    out: &mut String,
    value: &Value,
    indent: Option<usize>,
    level: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::custom("cannot serialize non-finite float"));
            }
            // `{:?}` always keeps a `.0` or exponent, so the value parses
            // back as a float.
            out.push_str(&format!("{f:?}"));
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1)?;
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1)?;
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::custom("unexpected end of input")),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::custom(format!("expected , or ] at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(Error::custom(format!("expected : at byte {pos}")));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(entries));
                    }
                    _ => return Err(Error::custom(format!("expected , or }} at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    keyword: &str,
    value: Value,
) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(keyword.as_bytes()) {
        *pos += keyword.len();
        Ok(value)
    } else {
        Err(Error::custom(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error::custom(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::custom("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| Error::custom("invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::custom("invalid \\u escape"))?;
                        // Surrogate pairs are not needed by this
                        // workspace's data; map lone surrogates to the
                        // replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(Error::custom("invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| Error::custom("invalid number"))?;
    if text.is_empty() || text == "-" {
        return Err(Error::custom(format!("expected value at byte {start}")));
    }
    if !is_float {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::Int(i));
        }
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::UInt(u));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| Error::custom(format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&1i64).unwrap(), "1");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(from_str::<i64>("1").unwrap(), 1);
        assert_eq!(from_str::<f64>("1.0").unwrap(), 1.0);
        assert_eq!(from_str::<f64>("1").unwrap(), 1.0);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
        assert!(from_str::<i64>("1.5").is_err());
        assert!(from_str::<i64>("1 x").is_err());
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1i64, -2, 3];
        assert_eq!(from_str::<Vec<i64>>(&to_string(&v).unwrap()).unwrap(), v);

        let mut m = BTreeMap::new();
        m.insert("k".to_string(), vec![0.5f64, 1.5]);
        let json = to_string(&m).unwrap();
        assert_eq!(json, "{\"k\":[0.5,1.5]}");
        assert_eq!(from_str::<BTreeMap<String, Vec<f64>>>(&json).unwrap(), m);
    }

    #[test]
    fn pretty_output_is_indented_and_parses_back() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1usize);
        let pretty = to_string_pretty(&m).unwrap();
        assert!(pretty.contains("\n  \"a\": 1\n"));
        assert_eq!(from_str::<BTreeMap<String, usize>>(&pretty).unwrap(), m);
    }

    #[test]
    fn rejects_non_finite() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }

    #[test]
    fn unicode_and_escapes() {
        let s = "héllo \"world\" \u{1F600}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>("\"\\u0041\"").unwrap(), "A");
    }
}
