//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the tiny slice of the `rand` API it actually uses: [`RngCore`],
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`) and a deterministic [`rngs::StdRng`]
//! (xoshiro256++ seeded through SplitMix64).
//!
//! Determinism is the property MooD depends on — identically seeded RNGs
//! produce identical streams forever — and this implementation guarantees
//! it without matching the upstream crate's exact stream.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A random number generator core: the object-safe part of the API.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable construction; only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    /// Creates an RNG whose entire stream is a function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from the "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: $t = Standard::sample_standard(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u: $t = Standard::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution (`[0, 1)` for
    /// floats, uniform bits for integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let u: f64 = Standard::sample_standard(self);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ with SplitMix64
    /// seeding. Fast, passes BigCrush, and — what matters here —
    /// perfectly deterministic from its 64-bit seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_change_the_stream() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let i = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&i));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen_range(0usize..=4);
            assert!(u <= 4);
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(9);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v = dyn_rng.gen_range(0..100);
        assert!(v < 100);
        let f: f64 = dyn_rng.gen();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
