//! Minimal `#[derive(Serialize, Deserialize)]` for the vendored serde
//! shim.
//!
//! Supports exactly the shapes this workspace uses:
//!
//! * structs with named fields;
//! * tuple structs (newtypes serialize transparently, wider tuples as
//!   arrays);
//! * enums with unit variants (serialized as the variant-name string)
//!   and struct variants (externally tagged objects);
//! * the container attributes `#[serde(try_from = "T")]`,
//!   `#[serde(from = "T")]` and `#[serde(into = "T")]`.
//!
//! The input is parsed directly from the token stream (no `syn`
//! available offline) and code is generated as source text.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Variant {
    name: String,
    /// `None` for unit variants, field names for struct variants.
    fields: Option<Vec<String>>,
}

#[derive(Debug)]
enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Parsed {
    name: String,
    shape: Shape,
    try_from: Option<String>,
    from: Option<String>,
    into: Option<String>,
}

/// Derives `serde::Serialize` for the annotated type.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` for the annotated type.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl parses")
}

fn parse_input(input: TokenStream) -> Parsed {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut try_from = None;
    let mut from = None;
    let mut into = None;

    // Leading attributes (doc comments, #[serde(...)], #[derive(...)], ...)
    while let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() != '#' {
            break;
        }
        let TokenTree::Group(g) = &tokens[i + 1] else {
            panic!("malformed attribute");
        };
        parse_serde_attr(g.stream(), &mut try_from, &mut from, &mut into);
        i += 2;
    }

    // Visibility.
    if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
        i += 1;
        if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }

    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected struct/enum, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, got {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generic types");
    }

    let shape = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            other => panic!("unsupported struct body: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("unsupported enum body: {other:?}"),
        },
        other => panic!("expected struct or enum, got {other}"),
    };

    Parsed {
        name,
        shape,
        try_from,
        from,
        into,
    }
}

/// Extracts try_from/from/into from a `serde(...)` attribute body, if
/// this attribute is one.
fn parse_serde_attr(
    stream: TokenStream,
    try_from: &mut Option<String>,
    from: &mut Option<String>,
    into: &mut Option<String>,
) {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let [TokenTree::Ident(id), TokenTree::Group(args)] = &tokens[..] else {
        return;
    };
    if id.to_string() != "serde" {
        return;
    }
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut j = 0;
    while j + 2 < args.len() + 1 {
        let Some(TokenTree::Ident(key)) = args.get(j) else {
            break;
        };
        let key = key.to_string();
        if !matches!(args.get(j + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("unsupported serde attribute shape near `{key}`");
        }
        let Some(TokenTree::Literal(lit)) = args.get(j + 2) else {
            panic!("serde attribute `{key}` expects a string literal");
        };
        let lit = lit.to_string();
        let ty = lit.trim_matches('"').to_string();
        match key.as_str() {
            "try_from" => *try_from = Some(ty),
            "from" => *from = Some(ty),
            "into" => *into = Some(ty),
            other => panic!("unsupported serde attribute `{other}`"),
        }
        j += 3;
        if matches!(args.get(j), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            j += 1;
        }
    }
}

/// Field names of a named-field body; types are skipped (inference
/// recovers them in the generated code).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // attributes on the field
        while matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#') {
            i += 2;
        }
        if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
            i += 1;
            if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let TokenTree::Ident(field) = &tokens[i] else {
            panic!("expected field name, got {:?}", tokens[i]);
        };
        fields.push(field.to_string());
        i += 1;
        assert!(
            matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ':'),
            "expected `:` after field name"
        );
        i += 1;
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Arity of a tuple-struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    for (idx, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 && idx + 1 < tokens.len() => {
                count += 1;
            }
            _ => {}
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#') {
            i += 2;
        }
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!("expected variant name, got {:?}", tokens[i]);
        };
        let name = name.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Some(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde shim derive does not support tuple enum variants ({name})");
            }
            _ => None,
        };
        variants.push(Variant { name, fields });
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    variants
}

fn gen_serialize(p: &Parsed) -> String {
    let name = &p.name;
    let body = if let Some(into) = &p.into {
        format!(
            "let __repr: {into} = ::core::convert::Into::into(::core::clone::Clone::clone(self));\n\
             ::serde::Serialize::to_value(&__repr)"
        )
    } else {
        match &p.shape {
            Shape::Named(fields) => {
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from(\"{f}\"), \
                             ::serde::Serialize::to_value(&self.{f}))"
                        )
                    })
                    .collect();
                format!(
                    "::serde::Value::Object(::std::vec![{}])",
                    entries.join(", ")
                )
            }
            Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
            Shape::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
            }
            Shape::Enum(variants) => {
                let arms: Vec<String> = variants
                    .iter()
                    .map(|v| {
                        let vname = &v.name;
                        match &v.fields {
                            None => format!(
                                "{name}::{vname} => \
                                 ::serde::Value::Str(::std::string::String::from(\"{vname}\"))"
                            ),
                            Some(fields) => {
                                let binders = fields.join(", ");
                                let entries: Vec<String> = fields
                                    .iter()
                                    .map(|f| {
                                        format!(
                                            "(::std::string::String::from(\"{f}\"), \
                                             ::serde::Serialize::to_value({f}))"
                                        )
                                    })
                                    .collect();
                                format!(
                                    "{name}::{vname} {{ {binders} }} => \
                                     ::serde::Value::Object(::std::vec![(\
                                     ::std::string::String::from(\"{vname}\"), \
                                     ::serde::Value::Object(::std::vec![{}]))])",
                                    entries.join(", ")
                                )
                            }
                        }
                    })
                    .collect();
                format!("match self {{ {} }}", arms.join(",\n"))
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize(p: &Parsed) -> String {
    let name = &p.name;
    let body = if let Some(try_from) = &p.try_from {
        format!(
            "let __repr: {try_from} = ::serde::Deserialize::from_value(__value)?;\n\
             ::core::convert::TryFrom::try_from(__repr)\n\
                 .map_err(|e| ::serde::Error::custom(::std::format!(\"{{e}}\")))"
        )
    } else if let Some(from) = &p.from {
        format!(
            "let __repr: {from} = ::serde::Deserialize::from_value(__value)?;\n\
             ::core::result::Result::Ok(::core::convert::From::from(__repr))"
        )
    } else {
        match &p.shape {
            Shape::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(__value.get(\"{f}\")\
                             .ok_or_else(|| ::serde::Error::missing_field(\"{f}\"))?)?"
                        )
                    })
                    .collect();
                format!(
                    "match __value {{\n\
                         ::serde::Value::Object(_) => \
                             ::core::result::Result::Ok({name} {{ {} }}),\n\
                         __other => ::core::result::Result::Err(\
                             ::serde::Error::unexpected(\"object\", __other)),\n\
                     }}",
                    inits.join(", ")
                )
            }
            Shape::Tuple(1) => format!(
                "::core::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))"
            ),
            Shape::Tuple(n) => {
                let inits: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                    .collect();
                format!(
                    "match __value {{\n\
                         ::serde::Value::Array(__items) if __items.len() == {n} => \
                             ::core::result::Result::Ok({name}({})),\n\
                         __other => ::core::result::Result::Err(\
                             ::serde::Error::unexpected(\"array of {n}\", __other)),\n\
                     }}",
                    inits.join(", ")
                )
            }
            Shape::Enum(variants) => {
                let unit_arms: Vec<String> = variants
                    .iter()
                    .filter(|v| v.fields.is_none())
                    .map(|v| {
                        let vname = &v.name;
                        format!("\"{vname}\" => ::core::result::Result::Ok({name}::{vname})")
                    })
                    .collect();
                let struct_arms: Vec<String> = variants
                    .iter()
                    .filter_map(|v| {
                        let fields = v.fields.as_ref()?;
                        let vname = &v.name;
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(__body.get(\"{f}\")\
                                     .ok_or_else(|| ::serde::Error::missing_field(\"{f}\"))?)?"
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{vname}\" => ::core::result::Result::Ok({name}::{vname} {{ {} }})",
                            inits.join(", ")
                        ))
                    })
                    .collect();
                format!(
                    "match __value {{\n\
                         ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                             {unit}\n\
                             __other => ::core::result::Result::Err(::serde::Error::custom(\
                                 ::std::format!(\"unknown variant `{{__other}}`\"))),\n\
                         }},\n\
                         ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                             let (__tag, __body) = &__entries[0];\n\
                             match __tag.as_str() {{\n\
                                 {strukt}\n\
                                 __other => ::core::result::Result::Err(::serde::Error::custom(\
                                     ::std::format!(\"unknown variant `{{__other}}`\"))),\n\
                             }}\n\
                         }}\n\
                         __other => ::core::result::Result::Err(\
                             ::serde::Error::unexpected(\"enum variant\", __other)),\n\
                     }}",
                    unit = if unit_arms.is_empty() {
                        String::new()
                    } else {
                        unit_arms.join(",\n") + ","
                    },
                    strukt = if struct_arms.is_empty() {
                        String::new()
                    } else {
                        struct_arms.join(",\n") + ","
                    },
                )
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__value: &::serde::Value) \
                 -> ::core::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}
