//! Whole-workspace determinism: identical seeds must reproduce identical
//! datasets, protections and reports — the property every experiment in
//! EXPERIMENTS.md relies on.

use mood_core::{protect_dataset, publish, MoodEngine};
use mood_synth::presets;
use mood_trace::TimeDelta;

#[test]
fn dataset_generation_is_bit_for_bit_reproducible() {
    for spec in presets::all() {
        let spec = spec.scaled(0.05);
        assert_eq!(
            spec.generate(),
            spec.generate(),
            "{} not deterministic",
            spec.name
        );
    }
}

#[test]
fn mood_protection_is_reproducible_across_runs_and_threads() {
    let ds = presets::privamov_like().scaled(0.15).generate();
    let (bg, test) = ds.split_chronological(TimeDelta::from_days(15));
    let engine1 = MoodEngine::paper_default(&bg);
    let engine2 = MoodEngine::paper_default(&bg);
    let r1 = protect_dataset(&engine1, &test, 1);
    let r2 = protect_dataset(&engine2, &test, 3);
    assert_eq!(r1, r2);

    let (p1, g1) = publish(r1.outcomes());
    let (p2, g2) = publish(r2.outcomes());
    assert_eq!(p1, p2);
    assert_eq!(g1, g2);
}

#[test]
fn different_seeds_produce_different_protections() {
    use std::sync::Arc;
    let ds = presets::privamov_like().scaled(0.15).generate();
    let (bg, test) = ds.split_chronological(TimeDelta::from_days(15));
    let base = MoodEngine::paper_default(&bg);

    let mut other_config = *base.config();
    other_config.seed ^= 0xDEAD_BEEF;
    let suite = Arc::new(mood_attacks::AttackSuite::train(
        &[
            &mood_attacks::PoiAttack::paper_default() as &dyn mood_attacks::Attack,
            &mood_attacks::PitAttack::paper_default(),
            &mood_attacks::ApAttack::paper_default(),
        ],
        &bg,
    ));
    let other = MoodEngine::new(suite, base.lppms().to_vec(), other_config);

    let trace = test.iter().next().unwrap();
    let a = base.protect_user(trace);
    let b = other.protect_user(trace);
    // same user, same search space — but the noise differs, so the
    // protected records differ (classes may coincide)
    let a_first = a.outcome.published().first().map(|p| p.trace.clone());
    let b_first = b.outcome.published().first().map(|p| p.trace.clone());
    if let (Some(ta), Some(tb)) = (a_first, b_first) {
        assert_ne!(ta, tb, "different seeds produced identical noise");
    }
}

#[test]
fn csv_export_is_stable() {
    let ds = presets::mdc_like().scaled(0.04).generate();
    let mut buf1 = Vec::new();
    let mut buf2 = Vec::new();
    mood_trace::io::write_csv(&ds, &mut buf1).unwrap();
    mood_trace::io::write_csv(&ds, &mut buf2).unwrap();
    assert_eq!(buf1, buf2);
}
