//! Cross-backend determinism of the execution layer: the contract the
//! whole exec refactor rests on. Every backend × thread-count
//! combination must produce **byte-for-byte** the same protection as
//! the sequential reference — at both parallelism levels (users in the
//! pipeline, candidates in the engine) — while changing the seed must
//! change the outcome.

use std::sync::Arc;

use mood_core::{
    protect_dataset, protect_dataset_with, protect_stream, EngineBuilder, Executor, ExecutorKind,
    MoodEngine, ProtectionReport,
};
use mood_synth::presets;
use mood_trace::{Dataset, TimeDelta};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn mini_world() -> (Dataset, Dataset) {
    let ds = presets::privamov_like().scaled(0.15).generate();
    ds.split_chronological(TimeDelta::from_days(15))
}

/// Byte-level fingerprint of a report: the serialized summary plus a
/// debug rendering of every outcome (which includes the protected
/// records themselves).
fn fingerprint(report: &ProtectionReport) -> String {
    let summary = serde_json::to_string(&report.summary()).expect("serializable summary");
    format!("{summary}\n{:?}", report.outcomes())
}

#[test]
fn protect_dataset_is_identical_for_every_backend_and_thread_count() {
    let (bg, test) = mini_world();
    let engine = MoodEngine::paper_default(&bg);
    let reference =
        protect_dataset_with(&engine, &test, ExecutorKind::Sequential.build(1).as_ref());
    let reference_bytes = fingerprint(&reference);

    for kind in ExecutorKind::all() {
        for threads in THREAD_COUNTS {
            let executor: Arc<dyn Executor> = kind.build(threads);
            let report = protect_dataset_with(&engine, &test, executor.as_ref());
            assert_eq!(report, reference, "{kind} x{threads} diverged");
            assert_eq!(
                fingerprint(&report),
                reference_bytes,
                "{kind} x{threads} fingerprint diverged"
            );
        }
    }
}

#[test]
fn scratch_attack_path_is_byte_identical_and_observably_reused() {
    // The scratch-aware attack path (per-worker AttackScratch, pruned
    // profile matching, shared rasterization cache, HMC plan cache) is
    // the engine's default scoring path. Gate it explicitly: every
    // backend × thread count must produce the byte-identical protection
    // AND must demonstrably run on warm attack arenas — if the scratch
    // plumbing silently fell back to the allocating path, the reuse
    // counter would stay at zero and this test would fail even though
    // outputs still matched.
    let (bg, test) = mini_world();
    let engine = MoodEngine::paper_default(&bg);
    let reference =
        protect_dataset_with(&engine, &test, ExecutorKind::Sequential.build(1).as_ref());
    let reference_bytes = fingerprint(&reference);

    for kind in ExecutorKind::all() {
        for threads in THREAD_COUNTS {
            let engine = EngineBuilder::paper_default(&bg)
                .executor(kind.build(threads))
                .build()
                .expect("paper defaults are valid");
            let report =
                protect_dataset_with(&engine, &test, ExecutorKind::Sequential.build(1).as_ref());
            assert_eq!(
                fingerprint(&report),
                reference_bytes,
                "scratch attack path diverged on {kind} x{threads}"
            );
            assert!(
                engine.attack_scratch_reuses() > 0,
                "{kind} x{threads}: no warm attack-scratch starts recorded"
            );
        }
    }
}

#[test]
fn store_trained_engines_are_byte_identical_across_backends_and_threads() {
    // Every engine after the first trains entirely from the shared
    // ProfileStore (verified full-compare hits, zero profile rebuilds).
    // Shared profiles must be invisible in the output: every backend ×
    // thread count over a warm store stays byte-identical to the
    // cold-trained sequential reference.
    use mood_attacks::ProfileStore;

    let (bg, test) = mini_world();
    let reference = protect_dataset(&MoodEngine::paper_default(&bg), &test, 1);
    let reference_bytes = fingerprint(&reference);

    let store = Arc::new(ProfileStore::new());
    let cold = {
        let first = EngineBuilder::paper_default_with_store(&bg, Arc::clone(&store))
            .build()
            .expect("paper defaults are valid");
        let _ = protect_dataset_with(&first, &test, ExecutorKind::Sequential.build(1).as_ref());
        store.counters()
    };

    for kind in ExecutorKind::all() {
        for threads in THREAD_COUNTS {
            let engine = EngineBuilder::paper_default_with_store(&bg, Arc::clone(&store))
                .executor(kind.build(threads))
                .build()
                .expect("paper defaults are valid");
            let report = protect_dataset_with(&engine, &test, kind.build(threads).as_ref());
            assert_eq!(
                fingerprint(&report),
                reference_bytes,
                "warm-store engine diverged on {kind} x{threads}"
            );
        }
    }
    let warm = store.counters();
    assert_eq!(
        warm.profile_builds, cold.profile_builds,
        "warm retrains must not rebuild a single profile"
    );
    assert_eq!(warm.misses, cold.misses);
    assert!(warm.hits > cold.hits, "warm retrains never hit the store");
}

#[test]
fn stage_observed_engines_are_byte_identical_for_every_backend_and_thread_count() {
    // The tracing tentpole's core promise: attaching a stage observer
    // (the span/aggregate layer `mood serve` and `mood trace` hang off
    // the engine) reads clocks but never touches the data path. Every
    // backend × thread count with an observer attached must stay
    // byte-identical to the plain sequential reference — and must
    // actually observe stages, so a silently detached observer can't
    // fake a pass.
    use mood_core::obs::StageAgg;
    use mood_core::ENGINE_STAGES;

    let (bg, test) = mini_world();
    let reference = protect_dataset(&MoodEngine::paper_default(&bg), &test, 1);
    let reference_bytes = fingerprint(&reference);

    for kind in ExecutorKind::all() {
        for threads in THREAD_COUNTS {
            let agg = Arc::new(StageAgg::new(&ENGINE_STAGES));
            let engine = EngineBuilder::paper_default(&bg)
                .executor(kind.build(threads))
                .stage_observer(Arc::clone(&agg))
                .build()
                .expect("paper defaults are valid");
            let report = protect_dataset_with(&engine, &test, kind.build(threads).as_ref());
            assert_eq!(
                fingerprint(&report),
                reference_bytes,
                "stage-observed engine diverged on {kind} x{threads}"
            );
            let stages = agg.drain();
            assert!(
                stages.iter().any(|s| s.stage == "raw_check"),
                "{kind} x{threads}: observer attached but no stages recorded"
            );
        }
    }
}

#[test]
fn two_level_parallelism_matches_the_sequential_reference() {
    // Candidate-level executor inside the engine AND user-level
    // executor in the pipeline, both parallel at once.
    let (bg, test) = mini_world();
    let reference = protect_dataset(&MoodEngine::paper_default(&bg), &test, 1);
    for kind in [
        ExecutorKind::ScopedPool,
        ExecutorKind::WorkStealing,
        ExecutorKind::Persistent,
    ] {
        for threads in THREAD_COUNTS {
            let engine = EngineBuilder::paper_default(&bg)
                .executor(kind.build(threads))
                .build()
                .expect("paper defaults are valid");
            let outer = ExecutorKind::WorkStealing.build(threads);
            let report = protect_dataset_with(&engine, &test, outer.as_ref());
            assert_eq!(
                report, reference,
                "two-level {kind} x{threads} diverged from sequential reference"
            );
        }
    }
}

#[test]
fn persistent_candidate_executor_shared_across_user_workers() {
    // The deployment-shaped regime: ONE persistent pool serving the
    // engine's candidate batches while a parallel user-level executor
    // submits to it from many threads at once (concurrent batches in
    // one pool). Results must stay byte-identical to sequential.
    let (bg, test) = mini_world();
    let reference = protect_dataset(&MoodEngine::paper_default(&bg), &test, 1);
    for threads in THREAD_COUNTS {
        let engine = EngineBuilder::paper_default(&bg)
            .executor(ExecutorKind::Persistent.build(threads))
            .build()
            .expect("paper defaults are valid");
        let outer = ExecutorKind::Persistent.build(threads);
        let report = protect_dataset_with(&engine, &test, outer.as_ref());
        assert_eq!(
            report, reference,
            "shared persistent pool x{threads} diverged from sequential reference"
        );
    }
}

#[test]
fn persistent_pool_is_reusable_after_an_empty_call_and_joins_on_drop() {
    use mood_core::PersistentPoolExecutor;

    let pool = PersistentPoolExecutor::new(4);
    assert_eq!(pool.worker_count(), 4);
    // An empty batch must be a no-op, not a wedge.
    pool.for_each_index(0, &|_| unreachable!("no indices to run"));

    // ...and the pool must still do real work afterwards.
    let (bg, test) = mini_world();
    let engine = MoodEngine::paper_default(&bg);
    let report = protect_dataset_with(&engine, &test, &pool);
    pool.for_each_index(0, &|_| unreachable!("no indices to run"));
    let again = protect_dataset_with(&engine, &test, &pool);
    assert_eq!(report, again, "reused pool diverged");

    // Drop joins every worker — if it leaked or deadlocked, this test
    // would hang rather than pass.
    drop(pool);
}

#[cfg(target_os = "linux")]
#[test]
fn persistent_pool_does_not_leak_threads() {
    use mood_core::PersistentPoolExecutor;

    fn thread_count() -> usize {
        std::fs::read_dir("/proc/self/task")
            .map(|dir| dir.count())
            .unwrap_or(0)
    }

    // Let unrelated test threads settle, then cycle pools: the thread
    // count after N create/use/drop cycles must not trend upward.
    let before = thread_count();
    for _ in 0..16 {
        let pool = PersistentPoolExecutor::new(4);
        pool.for_each_index(64, &|_| {});
        drop(pool);
    }
    let after = thread_count();
    assert!(
        after <= before + 2,
        "thread count grew from {before} to {after} across pool cycles"
    );
}

#[test]
fn store_backed_protection_and_evaluation_are_byte_identical() {
    // The trace-store tentpole's determinism contract: protecting and
    // attacking straight from the compressed chunked store — decoded
    // trace by trace through a budget-bounded cache — must stay
    // byte-for-byte identical to the in-memory dataset path, for every
    // backend × thread count. Cache hits, evictions and decode order
    // may all vary with scheduling; none of it may reach the output.
    use mood_attacks::{ApAttack, Attack, AttackSuite, PitAttack, PoiAttack};
    use mood_core::{protect_store_stream, protect_store_with};
    use mood_trace::{StoreConfig, TraceStore};

    let (bg, test) = mini_world();
    let engine = MoodEngine::paper_default(&bg);
    let suite = AttackSuite::train(
        &[
            &PoiAttack::paper_default() as &dyn Attack,
            &PitAttack::paper_default(),
            &ApAttack::paper_default(),
        ],
        &bg,
    );
    let reference = protect_dataset(&engine, &test, 1);
    let reference_bytes = fingerprint(&reference);
    let eval_reference = suite.evaluate_with(&test, ExecutorKind::Sequential.build(1).as_ref());

    // A budget around two decoded traces keeps the cache churning.
    let max_trace_bytes = test
        .iter()
        .map(|t| t.len() * std::mem::size_of::<mood_trace::Record>())
        .max()
        .expect("non-empty test split");
    let config = StoreConfig::default()
        .with_seal_records(64)
        .with_chunk_records(256)
        .with_cache_budget(2 * max_trace_bytes);
    let store = TraceStore::from_dataset(&test, config);

    for kind in ExecutorKind::all() {
        for threads in THREAD_COUNTS {
            let executor = kind.build(threads);
            let report = protect_store_with(&engine, &store, executor.as_ref());
            assert_eq!(
                fingerprint(&report),
                reference_bytes,
                "store-backed protect diverged on {kind} x{threads}"
            );
            let streamed = protect_store_stream(&engine, &store, executor.as_ref(), |_| {})
                .expect("sink does not panic");
            assert_eq!(
                fingerprint(&streamed),
                reference_bytes,
                "store-backed protect_stream diverged on {kind} x{threads}"
            );
            let eval = suite.evaluate_store_with(&store, executor.as_ref());
            assert_eq!(
                eval, eval_reference,
                "store-backed evaluation diverged on {kind} x{threads}"
            );
        }
    }
    let stats = store.stats();
    assert!(
        stats.peak_resident_bytes <= stats.budget_bytes,
        "decoded cache exceeded its budget: {} > {}",
        stats.peak_resident_bytes,
        stats.budget_bytes
    );
    assert!(stats.evictions > 0, "budget never forced an eviction");
}

#[test]
fn streaming_and_batch_agree_under_parallelism() {
    let (bg, test) = mini_world();
    let engine = MoodEngine::paper_default(&bg);
    let batch = protect_dataset(&engine, &test, 4);
    for kind in ExecutorKind::all() {
        let executor = kind.build(4);
        let streamed =
            protect_stream(&engine, &test, executor.as_ref(), |_| {}).expect("sink does not panic");
        assert_eq!(streamed, batch, "{kind} stream diverged");
    }
}

#[test]
fn changing_the_seed_changes_the_protection() {
    let (bg, test) = mini_world();
    let base = EngineBuilder::paper_default(&bg)
        .build()
        .expect("paper defaults are valid");
    let reseeded = EngineBuilder::paper_default(&bg)
        .seed(base.config().seed ^ 0xD15E_A5ED)
        .build()
        .expect("paper defaults are valid");

    let report_a = protect_dataset(&base, &test, 2);
    let report_b = protect_dataset(&reseeded, &test, 2);
    // Classes may coincide, but the published noise must differ
    // somewhere: compare the actual protected records.
    assert_ne!(
        format!("{:?}", report_a.outcomes()),
        format!("{:?}", report_b.outcomes()),
        "different seeds produced identical protected datasets"
    );
}
