//! The attack × LPPM matrix: qualitative shapes from the paper's
//! evaluation that must hold on the synthetic stand-ins.
//!
//! These tests run on a reduced privamov-like dataset (the paper's most
//! vulnerable one) and assert *orderings*, not absolute numbers — the
//! calibration contract documented in DESIGN.md §3.

use rand::rngs::StdRng;
use rand::SeedableRng;

use mood_attacks::{ApAttack, Attack, AttackSuite, PitAttack, PoiAttack};
use mood_lppm::{GeoI, Hmc, Lppm, Trl};
use mood_synth::presets;
use mood_trace::{Dataset, TimeDelta, Trace};

struct Matrix {
    users: usize,
    none: usize,
    geoi: usize,
    trl: usize,
    hmc: usize,
}

fn protect_all(test: &Dataset, lppm: &dyn Lppm) -> Dataset {
    test.iter()
        .map(|t| {
            let mut rng = StdRng::seed_from_u64(0xAA ^ t.user().as_u64());
            lppm.protect(t, &mut rng)
        })
        .collect()
}

fn build_matrix(scale: f64) -> Matrix {
    let ds = presets::privamov_like().scaled(scale).generate();
    let (train, test) = ds.split_chronological(TimeDelta::from_days(15));
    let suite = AttackSuite::train(
        &[
            &PoiAttack::paper_default() as &dyn Attack,
            &PitAttack::paper_default(),
            &ApAttack::paper_default(),
        ],
        &train,
    );
    let hmc = Hmc::paper_default(&train);
    let count = |ds: &Dataset| suite.evaluate(ds).non_protected_count();
    Matrix {
        users: test.user_count(),
        none: count(&test),
        geoi: count(&protect_all(&test, &GeoI::paper_default())),
        trl: count(&protect_all(&test, &Trl::paper_default())),
        hmc: count(&protect_all(&test, &hmc)),
    }
}

#[test]
fn raw_traces_are_highly_reidentifiable() {
    let m = build_matrix(0.3);
    assert!(
        m.none * 2 >= m.users,
        "only {}/{} raw users re-identified — synthetic world too anonymous",
        m.none,
        m.users
    );
}

#[test]
fn lppm_protection_ordering_matches_paper() {
    // paper (resident datasets): no-LPPM >= Geo-I >= TRL >= HMC.
    // Per-draw each comparison can wobble by a user (stochastic noise,
    // same contract as the composition test below).
    let m = build_matrix(0.3);
    assert!(m.none + 1 >= m.geoi, "Geo-I should not increase exposure");
    assert!(m.geoi + 1 >= m.trl, "TRL should protect more than Geo-I");
    assert!(m.trl + 1 >= m.hmc, "HMC should protect more than TRL");
    assert!(m.hmc < m.none, "HMC must protect someone");
}

#[test]
fn geo_i_barely_protects_at_medium_privacy() {
    // the paper's headline observation about Geo-I at eps = 0.01:
    // "the only way to make it resilient ... is to increase its level
    // of privacy" — at medium privacy most users stay exposed
    let m = build_matrix(0.3);
    assert!(
        m.geoi * 3 >= m.none * 2,
        "Geo-I protected too much: {} vs {} raw",
        m.geoi,
        m.none
    );
}

#[test]
fn poi_based_attacks_collapse_under_trl() {
    // TRL's dummies destroy dwell clusters: POI/PIT should abstain or
    // fail on almost everyone
    let ds = presets::privamov_like().scaled(0.3).generate();
    let (train, test) = ds.split_chronological(TimeDelta::from_days(15));
    let poi_suite = AttackSuite::train(&[&PoiAttack::paper_default() as &dyn Attack], &train);
    let protected = protect_all(&test, &Trl::paper_default());
    let eval = poi_suite.evaluate(&protected);
    assert!(
        eval.non_protected_count() <= test.user_count() / 5,
        "POI-Attack still re-identifies {}/{} TRL-protected users",
        eval.non_protected_count(),
        test.user_count()
    );
}

#[test]
fn hmc_defeats_the_heatmap_attack_it_targets() {
    let ds = presets::privamov_like().scaled(0.3).generate();
    let (train, test) = ds.split_chronological(TimeDelta::from_days(15));
    let ap_suite = AttackSuite::train(&[&ApAttack::paper_default() as &dyn Attack], &train);
    let raw = ap_suite.evaluate(&test).non_protected_count();
    let hmc = Hmc::paper_default(&train);
    let protected = protect_all(&test, &hmc);
    let after = ap_suite.evaluate(&protected).non_protected_count();
    // HMC at confusion 0.55 is deliberately imperfect (DESIGN.md); it
    // must still remove at least a quarter of the AP re-identifications.
    assert!(
        after * 4 <= raw * 3 && after < raw,
        "HMC only reduced AP hits from {raw} to {after}"
    );
}

#[test]
fn compositions_protect_more_than_their_parts() {
    use mood_lppm::Composition;
    use std::sync::Arc;

    let ds = presets::privamov_like().scaled(0.3).generate();
    let (train, test) = ds.split_chronological(TimeDelta::from_days(15));
    let suite = AttackSuite::train(
        &[
            &PoiAttack::paper_default() as &dyn Attack,
            &PitAttack::paper_default(),
            &ApAttack::paper_default(),
        ],
        &train,
    );
    let hmc: Arc<dyn Lppm> = Arc::new(Hmc::paper_default(&train));
    let geoi: Arc<dyn Lppm> = Arc::new(GeoI::paper_default());
    let chain = Composition::new(vec![hmc, geoi]);
    let protected = protect_all(&test, &chain);
    let composed = suite.evaluate(&protected).non_protected_count();
    let hmc_alone = suite
        .evaluate(&protect_all(&test, &Hmc::paper_default(&train)))
        .non_protected_count();
    // Per-draw the comparison can wobble by a user or two (stochastic
    // noise); the composition must not be materially worse than its
    // strongest part.
    assert!(
        composed <= hmc_alone + 2,
        "HMC→Geo-I ({composed}) materially worse than HMC alone ({hmc_alone})"
    );
}

#[test]
fn taxi_fleet_is_naturally_harder_to_reidentify() {
    let cabs = presets::cabspotting_like().scaled(0.12).generate();
    let residents = presets::privamov_like().scaled(0.3).generate();
    let rate = |ds: &Dataset| {
        let (train, test) = ds.split_chronological(TimeDelta::from_days(15));
        let suite = AttackSuite::train(
            &[
                &PoiAttack::paper_default() as &dyn Attack,
                &PitAttack::paper_default(),
                &ApAttack::paper_default(),
            ],
            &train,
        );
        suite.evaluate(&test).non_protected_ratio()
    };
    let cab_rate = rate(&cabs);
    let res_rate = rate(&residents);
    assert!(
        cab_rate < res_rate,
        "cabs ({cab_rate:.2}) should be harder to re-identify than residents ({res_rate:.2})"
    );
}

#[test]
fn every_mechanism_preserves_trace_nonemptiness() {
    let ds = presets::privamov_like().scaled(0.15).generate();
    let (train, test) = ds.split_chronological(TimeDelta::from_days(15));
    let hmc = Hmc::paper_default(&train);
    let geoi = GeoI::paper_default();
    let trl = Trl::paper_default();
    let mechanisms: Vec<&dyn Lppm> = vec![&geoi as &dyn Lppm, &trl, &hmc];
    for trace in test.iter() {
        for (i, lppm) in mechanisms.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(i as u64 ^ trace.user().as_u64());
            let p: Trace = lppm.protect(trace, &mut rng);
            assert!(!p.is_empty());
        }
    }
}
