//! Cross-crate invariants: properties that only hold when the crates
//! agree with each other (trace model ↔ models ↔ attacks ↔ LPPMs ↔
//! metrics), checked on realistic synthetic data.

use rand::rngs::StdRng;
use rand::SeedableRng;

use mood_attacks::{ApAttack, Attack, PitAttack, PoiAttack};
use mood_geo::Grid;
use mood_lppm::{GeoI, Hmc, Lppm, Trl};
use mood_metrics::spatio_temporal_distortion;
use mood_models::{Heatmap, MarkovChain, PoiExtractor};
use mood_synth::presets;
use mood_trace::{Dataset, TimeDelta};

fn world() -> (Dataset, Dataset) {
    let ds = presets::privamov_like().scaled(0.2).generate();
    ds.split_chronological(TimeDelta::from_days(15))
}

#[test]
fn heatmap_totals_match_trace_lengths() {
    let (train, _) = world();
    let grid = Grid::new(train.bounding_box().unwrap(), 800.0).unwrap();
    for trace in train.iter() {
        let hm = Heatmap::from_trace(&grid, trace);
        assert_eq!(hm.total(), trace.len() as f64);
    }
}

#[test]
fn poi_profiles_feed_consistent_markov_chains() {
    let (train, _) = world();
    let extractor = PoiExtractor::paper_default();
    for trace in train.iter() {
        let profile = extractor.extract_profile(trace);
        let mmc = MarkovChain::from_profile(&profile);
        assert_eq!(mmc.state_count(), profile.len());
        if !mmc.is_empty() {
            let pi_sum: f64 = mmc.stationary().iter().sum();
            assert!((pi_sum - 1.0).abs() < 1e-6);
            // heaviest POI should carry meaningful stationary mass
            assert!(mmc.stationary()[0] > 0.0);
        }
    }
}

#[test]
fn lppm_outputs_keep_user_and_time_monotonicity() {
    let (train, test) = world();
    let hmc = Hmc::paper_default(&train);
    let geoi = GeoI::paper_default();
    let trl = Trl::paper_default();
    let lppms: Vec<&dyn Lppm> = vec![&geoi as &dyn Lppm, &trl, &hmc];
    let trace = test.iter().next().unwrap();
    for (i, lppm) in lppms.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(i as u64);
        let protected = lppm.protect(trace, &mut rng);
        assert_eq!(protected.user(), trace.user(), "{}", lppm.name());
        for pair in protected.records().windows(2) {
            assert!(pair[0].time() <= pair[1].time(), "{}", lppm.name());
        }
        // obfuscation stays in the metropolitan area: Geo-I/TRL move a
        // record by at most a few km, and HMC relocates runs to decoy
        // cells anywhere in the *training* extent — so the bound is the
        // city, not the individual trace
        let bb = train.bounding_box().unwrap().expanded(5_000.0).unwrap();
        for r in protected.records() {
            assert!(
                bb.contains(&r.point()),
                "{} escaped the region",
                lppm.name()
            );
        }
    }
}

#[test]
fn attack_predictions_are_consistent_with_scores() {
    let (train, test) = world();
    let attacks: Vec<Box<dyn mood_attacks::TrainedAttack>> = vec![
        PoiAttack::paper_default().train(&train),
        PitAttack::paper_default().train(&train),
        ApAttack::paper_default().train(&train),
    ];
    for trace in test.iter().take(4) {
        for attack in &attacks {
            let p = attack.predict(trace);
            if let Some(winner) = p.predicted {
                // the winner is the first finite score
                let first = p
                    .scores
                    .iter()
                    .find(|(_, d)| d.is_finite())
                    .expect("finite score behind a prediction");
                assert_eq!(first.0, winner, "{}", attack.name());
                // scores sorted ascending
                for pair in p.scores.windows(2) {
                    assert!(pair[0].1 <= pair[1].1 || pair[1].1.is_nan());
                }
            }
        }
    }
}

#[test]
fn stronger_noise_means_larger_distortion() {
    let (_, test) = world();
    let trace = test.iter().next().unwrap();
    let mut prev = 0.0;
    for eps in [0.05, 0.01, 0.002] {
        let mut rng = StdRng::seed_from_u64(11);
        let protected = GeoI::new(eps).protect(trace, &mut rng);
        let std = spatio_temporal_distortion(trace, &protected);
        assert!(std > prev, "eps {eps}: {std} not > {prev}");
        prev = std;
    }
}

#[test]
fn trl_distortion_reflects_dummy_radius() {
    let (_, test) = world();
    let trace = test.iter().next().unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let protected = Trl::paper_default().protect(trace, &mut rng);
    let std = spatio_temporal_distortion(trace, &protected);
    // uniform disk of radius 1 km -> mean displacement ~667 m
    assert!((std - 667.0).abs() < 60.0, "TRL STD = {std}");
}
