//! End-to-end integration: generate → split → train attacks → protect
//! with MooD → publish → verify nothing links back.

use mood_core::{protect_dataset, publish, MoodEngine, UserClass};
use mood_synth::presets;
use mood_trace::TimeDelta;

fn world(scale: f64) -> (mood_trace::Dataset, mood_trace::Dataset) {
    let ds = presets::privamov_like().scaled(scale).generate();
    ds.split_chronological(TimeDelta::from_days(15))
}

#[test]
fn full_pipeline_protects_everything_published() {
    let (background, test) = world(0.2);
    let engine = MoodEngine::paper_default(&background);
    let report = protect_dataset(&engine, &test, 2);

    // every record is accounted for
    assert_eq!(report.data_loss.total_records(), test.record_count());

    // the published dataset resists the adversary for every trace
    let (published, ground_truth) = publish(report.outcomes());
    for trace in published.iter() {
        let original = ground_truth[&trace.user()];
        assert!(
            engine.suite().protects(trace, original),
            "published trace {} links back to {}",
            trace.user(),
            original
        );
    }
}

#[test]
fn mood_outperforms_every_single_lppm() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let (background, test) = world(0.2);
    let engine = MoodEngine::paper_default(&background);
    let report = protect_dataset(&engine, &test, 2);
    let mood_loss = report.data_loss.ratio();

    for lppm in engine.lppms() {
        let protected: mood_trace::Dataset = test
            .iter()
            .map(|t| {
                let mut rng = StdRng::seed_from_u64(7 ^ t.user().as_u64());
                lppm.protect(t, &mut rng)
            })
            .collect();
        let eval = engine.suite().evaluate(&protected);
        assert!(
            mood_loss <= eval.data_loss_ratio() + 1e-9,
            "MooD loss {mood_loss} worse than {} loss {}",
            lppm.name(),
            eval.data_loss_ratio()
        );
    }
}

#[test]
fn published_dataset_roundtrips_through_csv() {
    let (background, test) = world(0.12);
    let engine = MoodEngine::paper_default(&background);
    let report = protect_dataset(&engine, &test, 2);
    let (published, _) = publish(report.outcomes());

    let mut buf = Vec::new();
    mood_trace::io::write_csv(&published, &mut buf).expect("in-memory write");
    let back = mood_trace::io::read_csv(buf.as_slice()).expect("valid csv");
    assert_eq!(published, back);
}

#[test]
fn protection_classes_partition_the_population() {
    let (background, test) = world(0.2);
    let engine = MoodEngine::paper_default(&background);
    let report = protect_dataset(&engine, &test, 2);
    let sum: usize = report.class_counts.values().sum();
    assert_eq!(sum, report.users_total);
    // on this highly identifiable dataset some users need real work
    assert!(report.class_count(UserClass::NaturallyProtected) < report.users_total);
}

#[test]
fn fine_grained_users_get_pseudonymous_subtraces() {
    let (background, test) = world(0.25);
    let engine = MoodEngine::paper_default(&background);
    let report = protect_dataset(&engine, &test, 2);
    let (published, ground_truth) = publish(report.outcomes());

    // every published id is a pseudonym and maps to a real user
    for id in published.user_ids() {
        assert!(id.is_pseudonym());
        let original = ground_truth[&id];
        assert!(!original.is_pseudonym());
        assert!(test.get(original).is_some());
    }

    // users that went fine-grained contribute multiple pseudonyms
    for o in report.outcomes() {
        if let mood_core::ProtectionOutcome::FineGrained {
            published: subs, ..
        } = &o.outcome
        {
            if subs.len() > 1 {
                let ids: Vec<_> = ground_truth
                    .iter()
                    .filter(|(_, &orig)| orig == o.user)
                    .map(|(p, _)| *p)
                    .collect();
                assert_eq!(ids.len(), subs.len());
                return; // found at least one multi-sub-trace user: done
            }
        }
    }
}
