//! End-to-end contract of the compressed chunked trace store, through
//! the public facade only: a corpus streamed from CSV into a
//! budget-bounded `TraceStore` must behave exactly like the same corpus
//! fully materialized — same datasets, same metadata operations, same
//! protection report — while actually honouring its memory budget and
//! actually compressing.

use mood_core::{protect_dataset, protect_store_with, ExecutorKind, MoodEngine};
use mood_synth::presets;
use mood_trace::{io as trace_io, Record, StoreConfig, TimeDelta, TraceStore};

fn corpus_csv() -> (mood_trace::Dataset, Vec<u8>) {
    let ds = presets::privamov_like().scaled(0.15).generate();
    let mut csv = Vec::new();
    trace_io::write_csv(&ds, &mut csv).expect("serialize corpus");
    (ds, csv)
}

#[test]
fn streamed_ingestion_equals_in_memory_parse() {
    let (ds, csv) = corpus_csv();
    let store = trace_io::stream_csv(&csv[..], StoreConfig::default().with_seal_records(128))
        .expect("well-formed CSV");
    assert_eq!(store.user_count(), ds.user_count());
    assert_eq!(store.record_count(), ds.record_count());
    assert_eq!(store.to_dataset(), ds, "streamed store != parsed dataset");
}

#[test]
fn store_metadata_operations_match_dataset_operations() {
    let (ds, csv) = corpus_csv();
    let store = trace_io::stream_csv(&csv[..], StoreConfig::default().with_chunk_records(512))
        .expect("well-formed CSV");

    assert_eq!(store.bounding_box(), ds.bounding_box());
    assert_eq!(store.start_time(), ds.start_time());
    assert_eq!(store.end_time(), ds.end_time());

    let cut = TimeDelta::from_days(15);
    let (train, test) = ds.split_chronological(cut);
    let (train_s, test_s) = store.split_chronological(cut);
    assert_eq!(train_s.to_dataset(), train, "train split diverged");
    assert_eq!(test_s.to_dataset(), test, "test split diverged");

    let window = ds.most_active_window(7);
    let window_s = store.most_active_window(7);
    assert_eq!(
        window_s.map(|s| s.to_dataset()),
        window,
        "most_active_window diverged"
    );
}

#[test]
fn synth_generate_store_equals_from_dataset() {
    let spec = presets::cabspotting_like().scaled(0.05);
    let config = StoreConfig::default().with_seal_records(32);
    let streamed = spec.generate_store(config);
    let materialized = TraceStore::from_dataset(&spec.generate(), config);
    assert_eq!(streamed.to_dataset(), materialized.to_dataset());
}

#[test]
fn store_backed_protection_honours_budget_and_matches_in_memory() {
    let (ds, _csv) = corpus_csv();
    let (bg, test) = ds.split_chronological(TimeDelta::from_days(15));
    let mut test_csv = Vec::new();
    trace_io::write_csv(&test, &mut test_csv).expect("serialize test split");

    // Budget of about two decoded traces: big enough to cache, small
    // enough that eight users must churn through it.
    let max_trace_bytes = test
        .iter()
        .map(|t| t.len() * std::mem::size_of::<Record>())
        .max()
        .expect("non-empty test split");
    let store = trace_io::stream_csv(
        &test_csv[..],
        StoreConfig::default().with_cache_budget(2 * max_trace_bytes),
    )
    .expect("well-formed CSV");

    let engine = MoodEngine::paper_default(&bg);
    let reference = protect_dataset(&engine, &test, 2);
    let report = protect_store_with(&engine, &store, ExecutorKind::Persistent.build(2).as_ref());
    assert_eq!(report, reference, "store-backed protection diverged");

    let stats = store.stats();
    assert!(
        stats.peak_resident_bytes <= stats.budget_bytes,
        "cache peak {} exceeded budget {}",
        stats.peak_resident_bytes,
        stats.budget_bytes
    );
    assert!(stats.evictions > 0, "budget never forced an eviction");
    assert!(
        stats.encoded_bytes * 2 <= stats.records * std::mem::size_of::<Record>(),
        "encoded form must be at most half of Vec<Record>: {} vs {}",
        stats.encoded_bytes,
        stats.records * std::mem::size_of::<Record>()
    );
}
