//! Quickstart: protect a mobility dataset with MooD in ~20 lines.
//!
//! Generates a small synthetic city, splits it into background knowledge
//! and data-to-publish, builds the paper's engine (Geo-I + TRL + HMC
//! against POI/PIT/AP attacks) and protects every user.
//!
//! Run with: `cargo run --release -p mood-core --example quickstart`

use mood_core::{protect_dataset, publish, MoodEngine};
use mood_synth::presets;
use mood_trace::TimeDelta;

fn main() {
    // 1. A dataset to protect: 15 days of background knowledge H (what
    //    an adversary could already have) and 15 days to publish.
    let dataset = presets::privamov_like().scaled(0.5).generate();
    let (background, to_publish) = dataset.split_chronological(TimeDelta::from_days(15));
    println!(
        "dataset: {} users, {} records to publish",
        to_publish.user_count(),
        to_publish.record_count()
    );

    // 2. The MooD engine with the paper's attacks and LPPMs.
    let engine = MoodEngine::paper_default(&background);

    // 3. Protect everyone (parallel across users).
    let report = protect_dataset(&engine, &to_publish, 4);

    println!("\nprotection classes:");
    for (class, count) in &report.class_counts {
        println!("  {class}: {count}");
    }
    println!("\ndata loss: {}", report.data_loss);

    // 4. Publish under fresh pseudonyms.
    let (published, _ground_truth) = publish(report.outcomes());
    println!(
        "published {} pseudonymous traces ({} records)",
        published.user_count(),
        published.record_count()
    );

    // 5. Utility: how distorted is the published data?
    let mean_distortion = report
        .distortions
        .iter()
        .map(|d| d.distortion_m)
        .sum::<f64>()
        / report.distortions.len().max(1) as f64;
    println!("mean spatio-temporal distortion: {mean_distortion:.0} m");
}
