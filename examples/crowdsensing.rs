//! Crowd-sensing scenario: users upload their mobility daily; the
//! campaign server must publish per-cell participation counts (think
//! NoiseTube-style noise maps, the paper's §4.6 use case) without
//! exposing anyone to re-identification.
//!
//! This example protects each user's uploads with MooD, publishes the
//! result under rotating pseudonyms, verifies that nothing links back,
//! and measures how well the protected stream answers count queries.
//!
//! Run with: `cargo run --release -p mood-core --example crowdsensing`

use mood_core::{protect_dataset, publish, MoodEngine};
use mood_geo::Grid;
use mood_metrics::CountQueryStats;
use mood_synth::presets;
use mood_trace::TimeDelta;

fn main() {
    let dataset = presets::privamov_like().scaled(0.5).generate();
    let (background, campaign) = dataset.split_chronological(TimeDelta::from_days(15));
    println!(
        "crowd-sensing campaign: {} participants, {} raw records",
        campaign.user_count(),
        campaign.record_count()
    );

    // MooD with the paper's 24 h crowdsensing windows (users that resist
    // whole-trace protection contribute day-sized sub-traces under
    // rotating pseudonyms instead of dropping out).
    let engine = MoodEngine::paper_default(&background);
    let report = protect_dataset(&engine, &campaign, 4);
    let (published, ground_truth) = publish(report.outcomes());

    println!(
        "published stream: {} pseudonymous contributions, {} records (loss {:.2}%)",
        published.user_count(),
        published.record_count(),
        report.data_loss.percent()
    );

    // Privacy check: run the trained adversary on every published trace
    // against its true originator.
    let re_identified = published
        .iter()
        .filter(|t| {
            let original = ground_truth[&t.user()];
            !engine.suite().protects(t, original)
        })
        .count();
    println!(
        "adversary check: {re_identified} of {} published contributions re-identified",
        published.user_count()
    );

    // Count-query utility on the campaign's grid: can the analyst still
    // build the participation heat map?
    let grid = Grid::new(
        campaign
            .bounding_box()
            .expect("campaign not empty")
            .expanded(2_000.0)
            .expect("valid margin"),
        800.0,
    )
    .expect("valid cell size");
    let stats = CountQueryStats::compare(&grid, &campaign, &published);
    println!("\ncount-query utility over {} m cells:", grid.cell_size_m());
    println!("  cell recall      {:.1}%", stats.cell_recall * 100.0);
    println!("  cell precision   {:.1}%", stats.cell_precision * 100.0);
    println!("  cell F1          {:.1}%", stats.cell_f1 * 100.0);
    println!("  weighted Jaccard {:.3}", stats.weighted_jaccard);
    println!(
        "  mean |count error| per cell {:.1}",
        stats.mean_absolute_error
    );
}
