//! Orphan-disease analysis: which users are *orphan users* (protected by
//! no single LPPM, the paper's Eq. 4), and which treatment cured them —
//! a composition chain, fine-grained splitting, or nothing.
//!
//! Run with: `cargo run --release -p mood-core --example orphan_analysis`

use std::collections::BTreeMap;

use mood_core::{protect_dataset, MoodEngine, ProtectionOutcome, UserClass};
use mood_synth::presets;
use mood_trace::TimeDelta;

fn main() {
    let dataset = presets::privamov_like().scaled(0.5).generate();
    let (background, to_protect) = dataset.split_chronological(TimeDelta::from_days(15));
    let engine = MoodEngine::paper_default(&background);
    let report = protect_dataset(&engine, &to_protect, 4);

    println!("population: {} users", report.users_total);
    for (class, count) in &report.class_counts {
        println!("  {class}: {count}");
    }
    let orphans: Vec<_> = report
        .outcomes()
        .iter()
        .filter(|o| o.class.is_orphan())
        .collect();
    println!(
        "\n{} orphan users (no single LPPM protects them):",
        orphans.len()
    );

    // Which cures worked?
    let mut cures: BTreeMap<String, usize> = BTreeMap::new();
    for o in &orphans {
        match (&o.class, &o.outcome) {
            (UserClass::MultiLppm, ProtectionOutcome::Whole(p)) => {
                *cures.entry(format!("composition {}", p.lppm)).or_insert(0) += 1;
            }
            (UserClass::FineGrained, ProtectionOutcome::FineGrained { stats, .. }) => {
                *cures
                    .entry(format!(
                        "fine-grained ({}/{} sub-traces)",
                        stats.sub_traces_protected, stats.sub_traces_total
                    ))
                    .or_insert(0) += 1;
            }
            (UserClass::Unprotectable, _) => {
                *cures.entry("no cure found".into()).or_insert(0) += 1;
            }
            _ => {}
        }
    }
    for (cure, count) in &cures {
        println!("  {count} user(s): {cure}");
    }

    // Per-orphan detail.
    println!("\nper-orphan detail:");
    for o in orphans {
        match &o.outcome {
            ProtectionOutcome::Whole(p) => println!(
                "  {}: cured by {} (STD {:.0} m)",
                o.user, p.lppm, p.distortion_m
            ),
            ProtectionOutcome::FineGrained { stats, published } => println!(
                "  {}: fine-grained, {}/{} sub-traces published ({} records kept, {} erased), {} variants",
                o.user,
                stats.sub_traces_protected,
                stats.sub_traces_total,
                stats.records_published,
                stats.records_dropped,
                published.len()
            ),
        }
    }
}
