//! Data-publication scenario: the paper's motivating story (§2.4). A
//! data curator must release a mobility dataset; any trace the
//! state-of-the-art attacks can still re-identify has to be deleted.
//!
//! The example measures the data each strategy would lose — single
//! LPPMs, the HybridLPPM baseline, and MooD — then writes MooD's
//! publishable dataset to CSV.
//!
//! Run with: `cargo run --release -p mood-core --example dataset_publication`

use rand::rngs::StdRng;
use rand::SeedableRng;

use mood_core::{protect_dataset, publish, HybridLppm, MoodEngine};
use mood_synth::presets;
use mood_trace::{Dataset, TimeDelta, Trace};

fn main() {
    let dataset = presets::privamov_like().scaled(0.5).generate();
    let (background, to_publish) = dataset.split_chronological(TimeDelta::from_days(15));
    let total = to_publish.record_count();
    println!(
        "curator has {} users / {} records to release\n",
        to_publish.user_count(),
        total
    );
    let engine = MoodEngine::paper_default(&background);

    // --- strategy 1: one LPPM for everyone, delete what stays exposed ---
    println!("{:<24} {:>12} {:>12}", "strategy", "kept", "data loss");
    for lppm in engine.lppms() {
        let protected: Dataset = to_publish
            .iter()
            .map(|t| {
                let mut rng = StdRng::seed_from_u64(0xD0C ^ t.user().as_u64());
                lppm.protect(t, &mut rng)
            })
            .collect();
        let eval = engine.suite().evaluate(&protected);
        let lost: usize = to_publish
            .iter()
            .filter(|t| eval.non_protected_users.contains(&t.user()))
            .map(Trace::len)
            .sum();
        println!(
            "{:<24} {:>12} {:>11.1}%",
            format!("single {}", lppm.name()),
            total - lost,
            lost as f64 / total as f64 * 100.0
        );
    }

    // --- strategy 2: HybridLPPM (best single LPPM per user) ---
    let hybrid = HybridLppm::paper_default(&engine);
    let mut lost = 0usize;
    for trace in to_publish.iter() {
        if hybrid.protect_user(trace, engine.suite()).is_none() {
            lost += trace.len();
        }
    }
    println!(
        "{:<24} {:>12} {:>11.1}%",
        "HybridLPPM",
        total - lost,
        lost as f64 / total as f64 * 100.0
    );

    // --- strategy 3: MooD ---
    let report = protect_dataset(&engine, &to_publish, 4);
    println!(
        "{:<24} {:>12} {:>11.1}%",
        "MooD",
        report.data_loss.kept_records(),
        report.data_loss.percent()
    );

    // Write the publishable dataset.
    let (published, _gt) = publish(report.outcomes());
    let path = std::env::temp_dir().join("mood_published.csv");
    mood_trace::io::write_csv_file(&published, &path).expect("writable temp dir");
    println!(
        "\nMooD's publishable dataset written to {} ({} pseudonymous traces)",
        path.display(),
        published.user_count()
    );
}
