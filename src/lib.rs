//! MooD — *MObility data privacy as Orphan Disease* (Middleware 2019).
//!
//! This facade crate re-exports the whole workspace under one roof so
//! downstream users can depend on a single crate:
//!
//! * [`trace`] — traces, datasets, CSV/JSON I/O;
//! * [`geo`] — geodesy, grids, projections;
//! * [`metrics`] — distortion, data loss, count queries;
//! * [`models`] — POI, Markov-chain and heatmap mobility profiles;
//! * [`lppm`] — location privacy protection mechanisms;
//! * [`attacks`] — re-identification attacks and suites;
//! * [`synth`] — synthetic dataset generation;
//! * [`engine`] — the MooD engine, executor layer and pipeline;
//! * [`serve`] — the long-running HTTP protection service.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mood_attacks as attacks;
pub use mood_core as engine;
pub use mood_geo as geo;
pub use mood_lppm as lppm;
pub use mood_metrics as metrics;
pub use mood_models as models;
pub use mood_serve as serve;
pub use mood_synth as synth;
pub use mood_trace as trace;
